"""Stronger hydro invariants: free-stream preservation, symmetry,
limiter variants, 3-d axis isotropy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.eos.apply import apply_eos
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem


def uniform_grid(ndim=2, velocity=(0.3, -0.2, 0.1), max_level=2,
                 refine_one=True):
    tree = AMRTree(ndim=ndim, nblockx=2, nblocky=2 if ndim > 1 else 1,
                   nblockz=2 if ndim > 2 else 1, max_level=max_level,
                   periodic=(True, True, True),
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=ndim, nxb=8, nyb=8 if ndim > 1 else 1,
                    nzb=8 if ndim > 2 else 1, nguard=4, maxblocks=128)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    if refine_one:
        refine_block(grid, BlockId(0, *([1] + [0] * 2)))
    for b in grid.leaf_blocks():
        grid.interior(b, "dens")[:] = 2.0
        grid.interior(b, "pres")[:] = 5.0
        grid.interior(b, "velx")[:] = velocity[0]
        if ndim > 1:
            grid.interior(b, "vely")[:] = velocity[1]
        if ndim > 2:
            grid.interior(b, "velz")[:] = velocity[2]
        eint = 5.0 / (0.4 * 2.0)
        ke = 0.5 * sum(v * v for v in velocity[:ndim])
        grid.interior(b, "eint")[:] = eint
        grid.interior(b, "ener")[:] = eint + ke
    apply_eos(grid, eos)
    return grid, eos


class TestFreeStream:
    """A uniform moving state must stay exactly uniform — through guard
    cells, refinement jumps, flux matching, everything."""

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_uniform_flow_preserved(self, ndim):
        grid, eos = uniform_grid(ndim=ndim, refine_one=(ndim > 1))
        hydro = HydroUnit(eos, cfl=0.6)
        for _ in range(4):
            hydro.step(grid, hydro.timestep(grid))
        for b in grid.leaf_blocks():
            np.testing.assert_allclose(grid.interior(b, "dens"), 2.0,
                                       rtol=1e-12)
            np.testing.assert_allclose(grid.interior(b, "pres"), 5.0,
                                       rtol=1e-11)
            np.testing.assert_allclose(grid.interior(b, "velx"), 0.3,
                                       rtol=1e-11)

    @pytest.mark.parametrize("limiter", ["minmod", "mc", "vanleer"])
    def test_all_limiters_free_stream(self, limiter):
        grid, eos = uniform_grid(ndim=2)
        hydro = HydroUnit(eos, cfl=0.6, limiter=limiter)
        hydro.step(grid, hydro.timestep(grid))
        for b in grid.leaf_blocks():
            np.testing.assert_allclose(grid.interior(b, "dens"), 2.0,
                                       rtol=1e-12)


class TestSymmetry:
    def test_sod_mirror_symmetry(self):
        """Running Sod left-to-right and right-to-left gives mirrored
        solutions to machine precision."""
        def run(flip):
            tree = AMRTree(ndim=1, nblockx=4, max_level=0,
                           domain=((0, 1), (0, 1), (0, 1)))
            spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4,
                            maxblocks=8)
            grid = Grid(tree, spec)
            eos = GammaLawEOS(gamma=1.4)
            prob = SodProblem() if not flip else SodProblem(
                rho_l=0.125, p_l=0.1, rho_r=1.0, p_r=1.0)
            prob.initialize(grid, eos)
            hydro = HydroUnit(eos, cfl=0.5)
            t = 0.0
            while t < 0.1:
                dt = min(hydro.timestep(grid), 0.1 - t)
                hydro.step(grid, dt)
                t += dt
            xs, ds = [], []
            for b in grid.leaf_blocks():
                x, _, _ = grid.cell_centers(b)
                xs.append(np.broadcast_to(
                    x, grid.interior(b, "dens").shape).ravel())
                ds.append(grid.interior(b, "dens").ravel())
            xs = np.concatenate(xs)
            order = np.argsort(xs)
            return np.concatenate(ds)[order]

        fwd = run(False)
        bwd = run(True)
        np.testing.assert_allclose(fwd, bwd[::-1], rtol=1e-11)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_sod_isotropy_3d(self, axis):
        """The same 1-d Riemann problem along x, y, or z of a 3-d mesh
        produces identical profiles (sweep code is axis-agnostic)."""
        tree = AMRTree(ndim=3, nblockx=2, nblocky=2, nblockz=2, max_level=0,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=3, nxb=8, nyb=8, nzb=8, nguard=4, maxblocks=16)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        vel = ("velx", "vely", "velz")[axis]
        for b in grid.leaf_blocks():
            coords = grid.cell_centers(b)
            c = coords[axis]
            shape = grid.interior(b, "dens").shape
            left = np.broadcast_to(c < 0.5, shape)
            grid.interior(b, "dens")[:] = np.where(left, 1.0, 0.125)
            grid.interior(b, "pres")[:] = np.where(left, 1.0, 0.1)
            eint = grid.interior(b, "pres") / (0.4 * grid.interior(b, "dens"))
            grid.interior(b, "eint")[:] = eint
            grid.interior(b, "ener")[:] = eint
        apply_eos(grid, eos)
        hydro = HydroUnit(eos, cfl=0.5)
        t = 0.0
        while t < 0.1:
            dt = min(hydro.timestep(grid), 0.1 - t)
            hydro.step(grid, dt)
            t += dt
        # collapse onto the 1-d profile and compare to a reference run
        # along x computed the same way
        coords, dens = [], []
        for b in grid.leaf_blocks():
            c = grid.cell_centers(b)[axis]
            d = grid.interior(b, "dens")
            coords.append(np.broadcast_to(c, d.shape).ravel())
            dens.append(d.ravel())
        coords = np.concatenate(coords)
        dens = np.concatenate(dens)
        # all zones at the same coordinate have the same density (planar)
        for value in np.unique(np.round(coords, 12))[:4]:
            sel = np.isclose(coords, value)
            assert dens[sel].std() < 1e-10

    def test_positivity_under_strong_blast(self):
        """An extreme pressure jump must not produce negative states."""
        grid, eos = uniform_grid(ndim=2, velocity=(0, 0, 0),
                                 refine_one=False)
        center = grid.leaf_blocks()[0]
        grid.interior(center, "pres")[4, 4, 0] = 5e6
        grid.interior(center, "eint")[4, 4, 0] = 5e6 / (0.4 * 2.0)
        grid.interior(center, "ener")[4, 4, 0] = 5e6 / (0.4 * 2.0)
        apply_eos(grid, eos)
        hydro = HydroUnit(eos, cfl=0.3)
        for _ in range(10):
            hydro.step(grid, hydro.timestep(grid))
            for b in grid.leaf_blocks():
                assert (grid.interior(b, "dens") > 0).all()
                assert (grid.interior(b, "pres") > 0).all()
