"""Order-of-accuracy verification: smooth acoustic wave + planar Sedov."""

import numpy as np
import pytest

from repro.analysis import peak_location
from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.eos.apply import apply_eos
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import SedovSolution, sedov_setup


GAMMA = 1.4


def acoustic_error(nxb: int, amp: float = 1e-4) -> float:
    """L1 density error after one period of a right-going sound wave on a
    periodic 1-d domain (exact solution: the wave returns unchanged)."""
    tree = AMRTree(ndim=1, nblockx=4, max_level=0,
                   periodic=(True, True, True),
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=nxb, nyb=1, nzb=1, nguard=4, maxblocks=8)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=GAMMA)

    rho0, p0 = 1.0, 1.0 / GAMMA  # c_s = 1
    for block in grid.leaf_blocks():
        x, _, _ = grid.cell_centers(block)
        shape = grid.interior(block, "dens").shape
        wave = amp * np.broadcast_to(np.sin(2 * np.pi * x), shape)
        # right-going simple wave linearisation
        dens = rho0 * (1.0 + wave)
        velx = wave  # c_s = 1
        pres = p0 + GAMMA * p0 * wave
        grid.interior(block, "dens")[:] = dens
        grid.interior(block, "velx")[:] = velx
        grid.interior(block, "pres")[:] = pres
        eint = pres / ((GAMMA - 1.0) * dens)
        grid.interior(block, "eint")[:] = eint
        grid.interior(block, "ener")[:] = eint + 0.5 * velx**2
    apply_eos(grid, eos)
    initial = {b.bid: grid.interior(b, "dens").copy()
               for b in grid.leaf_blocks()}

    hydro = HydroUnit(eos, cfl=0.6)
    t, period = 0.0, 1.0  # domain length / sound speed
    while t < period:
        dt = min(hydro.timestep(grid), period - t)
        hydro.step(grid, dt)
        t += dt
    err = 0.0
    n = 0
    for b in grid.leaf_blocks():
        err += np.abs(grid.interior(b, "dens") - initial[b.bid]).sum()
        n += grid.interior(b, "dens").size
    return err / n / amp  # normalised by the wave amplitude


class TestAcousticConvergence:
    def test_second_order_on_smooth_flow(self):
        """Halving dx must cut the smooth-flow error by ~4 (2nd order).

        Limiter clipping at the wave extrema typically degrades the
        measured rate slightly below 2; we require > 1.5."""
        e_coarse = acoustic_error(16)
        e_fine = acoustic_error(32)
        rate = np.log2(e_coarse / e_fine)
        assert e_fine < e_coarse
        assert rate > 1.5, f"observed order {rate:.2f}"

    def test_amplitude_linearity(self):
        """In the linear regime the normalised error is amplitude-free."""
        e1 = acoustic_error(16, amp=1e-4)
        e2 = acoustic_error(16, amp=1e-5)
        assert e1 == pytest.approx(e2, rel=0.1)


class TestPlanarSedov:
    def test_planar_blast_matches_j1_solution(self):
        """1-d (planar, j=1) Sedov: shock position vs the closed-form
        solution with alpha(1.4, j=1)."""
        tree = AMRTree(ndim=1, nblockx=8, max_level=0,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=32, nyb=1, nzb=1, nguard=4,
                        maxblocks=16)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=GAMMA)
        # energy on the x=0 plane: the deposit's 1-d "volume" spans both
        # sides of the plane but only half lies in-domain, so energy=1
        # puts E=0.5 in-domain — a symmetric planar blast of E_total=1
        sedov_setup(grid, eos, energy=1.0, rho0=1.0, p_ambient=1e-6,
                    center=(0.0, 0.0, 0.0), deposit_radius=3.0 / 256)
        from repro.mesh.guardcell import BC_REFLECT, BoundaryConditions

        bc = BoundaryConditions(x=(BC_REFLECT, "outflow"))
        sim = Simulation(grid, HydroUnit(eos, cfl=0.5, bc=bc), nrefs=0,
                         dtinit=1e-6)
        sim.evolve(tmax=0.08, nend=3000)

        exact = SedovSolution(gamma=GAMMA, j=1, energy=1.0, rho0=1.0)
        # the deposit is half of a symmetric planar blast of E=1
        r_exact = float(exact.shock_radius(sim.t))
        r_meas, compression = peak_location(grid, "dens")
        assert r_meas == pytest.approx(r_exact, rel=0.12)
        assert compression > 2.5  # approaching (g+1)/(g-1) = 6
