"""Thermodynamic-consistency tests for the Helmholtz EOS derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.physics.eos import CO_WD, HYBRID_CONE_WD, HelmholtzEOS


@pytest.fixture(scope="module")
def eos():
    return HelmholtzEOS()


class TestDerivatives:
    @pytest.mark.parametrize("dens,temp", [
        (1e5, 1e8), (1e7, 3e8), (1e9, 1e8), (1e3, 2e9),
    ])
    def test_dpt_matches_finite_difference(self, eos, dens, temp):
        h = 1e-4 * temp
        p_hi = eos.eos_dt(dens, temp + h, CO_WD.abar, CO_WD.zbar).pres[0]
        p_lo = eos.eos_dt(dens, temp - h, CO_WD.abar, CO_WD.zbar).pres[0]
        dpt = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar).dpt[0]
        assert dpt == pytest.approx((p_hi - p_lo) / (2 * h), rel=3e-2)

    @pytest.mark.parametrize("dens,temp", [
        (1e5, 1e8), (1e7, 3e8), (1e9, 1e8),
    ])
    def test_dpd_matches_finite_difference(self, eos, dens, temp):
        h = 1e-4 * dens
        p_hi = eos.eos_dt(dens + h, temp, CO_WD.abar, CO_WD.zbar).pres[0]
        p_lo = eos.eos_dt(dens - h, temp, CO_WD.abar, CO_WD.zbar).pres[0]
        dpd = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar).dpd[0]
        assert dpd == pytest.approx((p_hi - p_lo) / (2 * h), rel=3e-2)

    def test_gamma1_consistent_with_adiabat(self, eos):
        """Gamma_1 = dlnP/dlnrho at constant entropy: compress a parcel
        adiabatically (ds = 0 via cv, dpt relations) and compare."""
        dens, temp = 1e7, 2e8
        r0 = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar)
        # adiabatic temperature change for a small compression:
        # dT/drho|_s = T dpt / (rho^2 cv)   (standard thermodynamics)
        eps = 1e-4
        d_rho = eps * dens
        d_temp = float(r0.temp[0] * r0.dpt[0] / (dens**2 * r0.cv[0])) * d_rho
        r1 = eos.eos_dt(dens + d_rho, temp + d_temp, CO_WD.abar, CO_WD.zbar)
        gamma1_fd = (np.log(r1.pres[0] / r0.pres[0])
                     / np.log((dens + d_rho) / dens))
        assert gamma1_fd == pytest.approx(float(r0.gamc[0]), rel=2e-2)

    def test_entropy_increases_with_temperature(self, eos):
        temps = np.logspace(7.5, 9.5, 12)
        r = eos.eos_dt(np.full(12, 1e6), temps, CO_WD.abar, CO_WD.zbar)
        assert (np.diff(r.entr) > 0).all()

    def test_entropy_decreases_with_density(self, eos):
        dens = np.logspace(4, 8, 12)
        r = eos.eos_dt(dens, np.full(12, 5e8), CO_WD.abar, CO_WD.zbar)
        assert (np.diff(r.entr) < 0).all()

    @settings(max_examples=25, deadline=None)
    @given(lg_d=st.floats(2, 9), lg_t=st.floats(7, 9.3))
    def test_state_well_formed_everywhere(self, eos, lg_d, lg_t):
        r = eos.eos_dt(10.0**lg_d, 10.0**lg_t, HYBRID_CONE_WD.abar,
                       HYBRID_CONE_WD.zbar)
        assert np.isfinite(r.pres[0]) and r.pres[0] > 0
        assert np.isfinite(r.eint[0]) and r.eint[0] > 0
        assert np.isfinite(r.cs[0]) and r.cs[0] > 0
        assert r.cv[0] > 0
        assert 1.0 < r.gamc[0] < 2.7

    def test_composition_dependence(self, eos):
        """At fixed (rho, T) heavier ash has lower ion pressure (fewer
        ions) — P(NSE ash) < P(fuel)."""
        from repro.physics.eos import NSE_ASH

        p_fuel = eos.eos_dt(1e7, 3e9, HYBRID_CONE_WD.abar,
                            HYBRID_CONE_WD.zbar).pres[0]
        p_ash = eos.eos_dt(1e7, 3e9, NSE_ASH.abar, NSE_ASH.zbar).pres[0]
        assert p_ash < p_fuel
