"""Tests for the electron EOS, assembled Helmholtz EOS, and gamma law."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.constants import AVOGADRO, BOLTZMANN, C_LIGHT
from repro.util.errors import PhysicsError
from repro.physics.eos import (
    CO_WD,
    HYBRID_CONE_WD,
    NSE_ASH,
    Composition,
    GammaLawEOS,
    HelmholtzEOS,
)
from repro.physics.eos.coulomb import coulomb_corrections, coupling_gamma
from repro.physics.eos.electron import (
    cold_degenerate_pressure,
    electron_state,
    solve_eta,
)
from repro.physics.eos.invert import invert_dens_eint, invert_dens_pres
from repro.physics.eos.ion import ion_energy, ion_pressure


@pytest.fixture(scope="module")
def eos():
    return HelmholtzEOS()


class TestComposition:
    def test_co_wd(self):
        assert CO_WD.abar == pytest.approx(13.714285714, rel=1e-9)
        assert CO_WD.ye == pytest.approx(0.5)

    def test_hybrid(self):
        assert HYBRID_CONE_WD.ye == pytest.approx(0.5)
        assert 12.0 < HYBRID_CONE_WD.abar < 20.0

    def test_nse_ash_ye(self):
        assert NSE_ASH.ye == pytest.approx(0.5)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(PhysicsError):
            Composition.from_fractions(c12=0.5, o16=0.2)

    def test_unknown_isotope(self):
        with pytest.raises(PhysicsError):
            Composition.from_fractions(unobtainium=1.0)


class TestElectronState:
    def test_cold_degenerate_pressure_match(self):
        rho_ye = np.array([1e5, 1e7, 1e9])
        state = electron_state(rho_ye, 1e5)
        np.testing.assert_allclose(state.pressure,
                                   cold_degenerate_pressure(rho_ye), rtol=1e-5)

    def test_nondegenerate_ideal_gas(self):
        state = electron_state(np.array([1.0]), 1e7)
        nkt = 1.0 * AVOGADRO * BOLTZMANN * 1e7
        assert state.pressure[0] == pytest.approx(nkt, rel=1e-3)

    def test_pair_plasma(self):
        """At T ~ 5e9 K and low density, positrons nearly equal electrons."""
        state = electron_state(np.array([10.0]), 5e9)
        assert state.n_pos[0] / state.n_ele[0] > 0.99

    def test_charge_neutrality(self):
        rho_ye = np.array([1e2, 1e6, 1e9])
        state = electron_state(rho_ye, 1e9)
        np.testing.assert_allclose(state.n_ele - state.n_pos,
                                   rho_ye * AVOGADRO, rtol=1e-9)

    def test_eta_monotone_in_density(self):
        eta = solve_eta(np.array([1e4, 1e6, 1e8]), 1e8)
        assert eta[0] < eta[1] < eta[2]

    def test_entropy_positive(self):
        state = electron_state(np.array([1e2, 1e6]), 1e9)
        assert (state.entropy_density > 0).all()


class TestIonRadiation:
    def test_ion_pressure_ideal(self):
        p = ion_pressure(1e6, 1e8, abar=12.0)
        assert p == pytest.approx(1e6 * AVOGADRO * BOLTZMANN * 1e8 / 12.0)

    def test_ion_energy_three_halves(self):
        e = ion_energy(1e6, 1e8, abar=12.0)
        p = ion_pressure(1e6, 1e8, abar=12.0)
        assert e == pytest.approx(1.5 * p / 1e6)

    def test_coulomb_negative_when_coupled(self):
        """WD interior: Gamma >> 1 -> binding (negative) corrections."""
        g = coupling_gamma(1e9, 1e8, CO_WD.abar, CO_WD.zbar)
        assert g > 10.0
        p_c, e_c = coulomb_corrections(1e9, 1e8, CO_WD.abar, CO_WD.zbar)
        assert p_c < 0 and e_c < 0

    def test_coulomb_vanishes_when_weak(self):
        p_c, e_c = coulomb_corrections(1e-3, 1e9, CO_WD.abar, CO_WD.zbar)
        p_ideal = ion_pressure(1e-3, 1e9, CO_WD.abar)
        assert abs(p_c) < 1e-2 * p_ideal


class TestHelmholtz:
    def test_wd_core_is_degeneracy_dominated(self, eos):
        """At rho=2e9, T=1e8 the pressure is overwhelmingly electronic and
        nearly temperature-independent."""
        r_cold = eos.eos_dt(2e9, 1e7, CO_WD.abar, CO_WD.zbar)
        r_warm = eos.eos_dt(2e9, 1e8, CO_WD.abar, CO_WD.zbar)
        assert abs(r_warm.pres[0] / r_cold.pres[0] - 1.0) < 0.01
        assert r_warm.pres[0] == pytest.approx(
            cold_degenerate_pressure(1e9), rel=0.05)

    def test_gamc_in_physical_range(self, eos):
        dens = np.logspace(0, 9, 30)
        r = eos.eos_dt(dens, 1e8, CO_WD.abar, CO_WD.zbar)
        assert (r.gamc > 1.0).all()
        assert (r.gamc < 2.7).all()

    def test_relativistic_degenerate_gamma_four_thirds(self, eos):
        r = eos.eos_dt(5e9, 1e7, CO_WD.abar, CO_WD.zbar)
        assert r.gamc[0] == pytest.approx(4.0 / 3.0, abs=0.03)

    def test_sound_speed_below_light_in_wd_regime(self, eos):
        """Within the Newtonian code's validity domain (P << rho c^2 — all
        of a white-dwarf interior) the sound speed stays subluminal."""
        dens = np.logspace(1, 10, 40)
        r = eos.eos_dt(dens, 1e9, CO_WD.abar, CO_WD.zbar)
        assert (r.cs < C_LIGHT).all()

    def test_pressure_monotone_in_density(self, eos):
        dens = np.logspace(2, 9, 40)
        r = eos.eos_dt(dens, 1e8, CO_WD.abar, CO_WD.zbar)
        assert (np.diff(r.pres) > 0).all()

    def test_energy_monotone_in_temperature(self, eos):
        temps = np.logspace(6, 9.8, 30)
        r = eos.eos_dt(np.full(30, 1e7), temps, CO_WD.abar, CO_WD.zbar)
        assert (np.diff(r.eint) > 0).all()

    def test_cv_consistent_with_energy_derivative(self, eos):
        """cv from the splines must match a finite difference of eint."""
        dens, t = 1e7, 2e8
        h = t * 1e-4
        e_hi = eos.eos_dt(dens, t + h, CO_WD.abar, CO_WD.zbar).eint[0]
        e_lo = eos.eos_dt(dens, t - h, CO_WD.abar, CO_WD.zbar).eint[0]
        cv = eos.eos_dt(dens, t, CO_WD.abar, CO_WD.zbar).cv[0]
        assert cv == pytest.approx((e_hi - e_lo) / (2 * h), rel=2e-2)

    def test_rejects_negative_density(self, eos):
        with pytest.raises(PhysicsError):
            eos.eos_dt(-1.0, 1e8, CO_WD.abar, CO_WD.zbar)

    def test_eint_cv_fast_path_matches(self, eos):
        dens = np.logspace(3, 9, 16)
        temp = np.full(16, 3e8)
        full = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar)
        e, cv = eos.eint_cv(dens, temp, CO_WD.abar, CO_WD.zbar)
        np.testing.assert_allclose(e, full.eint, rtol=1e-12)
        np.testing.assert_allclose(cv, full.cv, rtol=1e-12)


class TestInversion:
    def test_round_trip_dens_ei(self, eos):
        dens = np.logspace(3, 9, 50)
        temp = np.logspace(7, 9.3, 50)
        r = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar)
        t2, iters = invert_dens_eint(eos, dens, r.eint, CO_WD.abar, CO_WD.zbar)
        np.testing.assert_allclose(t2, temp, rtol=1e-6)
        assert iters.max() < 60

    def test_round_trip_with_guess_faster(self, eos):
        dens = np.logspace(4, 9, 30)
        temp = np.full(30, 5e8)
        r = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar)
        _, it_cold = invert_dens_eint(eos, dens, r.eint, CO_WD.abar, CO_WD.zbar)
        _, it_warm = invert_dens_eint(eos, dens, r.eint, CO_WD.abar,
                                      CO_WD.zbar, temp_guess=temp * 1.01)
        assert it_warm.sum() <= it_cold.sum()

    def test_cold_energy_clamps_to_floor(self, eos):
        """Degenerate matter colder than the table floor clamps, not crashes
        (FLASH's eos does the same)."""
        r = eos.eos_dt(1e9, eos.temp_min, CO_WD.abar, CO_WD.zbar)
        t2, _ = invert_dens_eint(eos, np.array([1e9]), r.eint * 0.999999,
                                 CO_WD.abar, CO_WD.zbar)
        assert t2[0] == pytest.approx(eos.temp_min)

    def test_round_trip_dens_pres(self, eos):
        dens = np.logspace(3, 7, 20)
        temp = np.full(20, 8e8)
        r = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar)
        t2, _ = invert_dens_pres(eos, dens, r.pres, CO_WD.abar, CO_WD.zbar)
        np.testing.assert_allclose(t2, temp, rtol=1e-5)

    def test_eos_de_interface(self, eos):
        r0 = eos.eos_dt(1e8, 3e8, CO_WD.abar, CO_WD.zbar)
        r1 = eos.eos_de(1e8, r0.eint, CO_WD.abar, CO_WD.zbar)
        assert r1.temp[0] == pytest.approx(3e8, rel=1e-6)
        assert r1.pres[0] == pytest.approx(r0.pres[0], rel=1e-6)


class TestGammaLaw:
    def test_pressure_relation(self):
        eos = GammaLawEOS(gamma=1.4)
        r = eos.eos_de(np.array([2.0]), np.array([3.0]))
        assert r.pres[0] == pytest.approx(0.4 * 2.0 * 3.0)
        assert r.gamc[0] == 1.4

    def test_sound_speed(self):
        eos = GammaLawEOS(gamma=5.0 / 3.0)
        r = eos.eos_de(np.array([1.0]), np.array([1.0]))
        assert r.cs[0] == pytest.approx(np.sqrt(5.0 / 3.0 * r.pres[0]))

    def test_dt_de_round_trip(self):
        eos = GammaLawEOS(gamma=1.4)
        r = eos.eos_dt(np.array([1.0]), np.array([1e4]))
        r2 = eos.eos_de(np.array([1.0]), r.eint)
        assert r2.temp[0] == pytest.approx(1e4)

    def test_dp_mode(self):
        eos = GammaLawEOS(gamma=1.4)
        r = eos.eos_dp(np.array([2.0]), np.array([10.0]))
        assert r.eint[0] == pytest.approx(10.0 / (0.4 * 2.0))

    def test_invalid_gamma(self):
        with pytest.raises(PhysicsError):
            GammaLawEOS(gamma=1.0)

    @given(dens=st.floats(1e-5, 1e5), eint=st.floats(1e-5, 1e15))
    @settings(max_examples=50)
    def test_game_equals_gamma(self, dens, eint):
        eos = GammaLawEOS(gamma=1.4)
        r = eos.eos_de(np.array([dens]), np.array([eint]))
        assert r.game[0] == pytest.approx(1.4)
