"""Tests for the ADR flame and monopole gravity units."""

import numpy as np
import pytest

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.guardcell import BoundaryConditions, fill_guardcells
from repro.mesh.tree import AMRTree
from repro.physics.flame.adr import ADRFlame
from repro.physics.flame.speed import (
    FlameSpeedTable,
    laminar_speed_fit,
    turbulent_enhancement,
)
from repro.physics.gravity.monopole import MonopoleGravity
from repro.util.constants import G_NEWTON, M_SUN
from repro.util.errors import PhysicsError


def flame_grid(nblockx=8, nxb=32, dens=2e9, phi_x=0.1):
    L = 1e7
    tree = AMRTree(ndim=1, nblockx=nblockx, max_level=0,
                   domain=((0, L), (0, 1), (0, 1)))
    variables = VariableRegistry().extended("fl01", "fl02")
    spec = MeshSpec(ndim=1, nxb=nxb, nyb=1, nzb=1, nguard=4, maxblocks=16)
    grid = Grid(tree, spec, variables)
    for b in grid.leaf_blocks():
        x, _, _ = grid.cell_centers(b)
        grid.interior(b, "dens")[:] = dens
        grid.interior(b, "fl01")[:] = np.where(x < phi_x * L, 1.0, 0.0)
    return grid, L


def front_position(grid):
    xs, ps = [], []
    for b in grid.leaf_blocks():
        x, _, _ = grid.cell_centers(b)
        xs += list(np.broadcast_to(x, grid.interior(b, "fl01").shape).ravel())
        ps += list(grid.interior(b, "fl01").ravel())
    xs, ps = np.array(xs), np.array(ps)
    order = np.argsort(xs)
    return np.interp(0.5, ps[order][::-1], xs[order][::-1])


class TestFlameSpeed:
    def test_fit_anchor(self):
        assert laminar_speed_fit(2e9, 0.5) == pytest.approx(9.2e6)

    def test_table_matches_fit(self):
        table = FlameSpeedTable()
        dens = np.array([1e7, 1e8, 2e9, 5e9])
        got = table(dens, 0.3)
        want = laminar_speed_fit(dens, 0.3)
        np.testing.assert_allclose(got, want, rtol=5e-3)

    def test_table_clamps_at_edges(self):
        table = FlameSpeedTable()
        assert table(1.0, 0.5) == table(10 ** table.lg_dens[0], 0.5)

    def test_turbulent_enhancement_limits(self):
        assert turbulent_enhancement(1e6, 0.0) == pytest.approx(1e6)
        assert turbulent_enhancement(1e5, 1e7) == pytest.approx(1e7, rel=1e-3)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(PhysicsError):
            turbulent_enhancement(1e6, 1e6, coefficient=-1.0)


class TestADRFlame:
    def test_front_speed(self):
        """The calibrated front must propagate at the tabulated speed."""
        grid, L = flame_grid()
        flame = ADRFlame(x_carbon_fuel=0.5, q_carbon=0.0, q_nse=0.0,
                         turb_coefficient=0.0)
        s_true = laminar_speed_fit(2e9, 0.5)
        dx = L / (8 * 32)
        dt = 0.1 * dx / s_true
        for _ in range(600):
            fill_guardcells(grid, BoundaryConditions())
            flame.step(grid, dt)
        x0 = front_position(grid)
        for _ in range(600):
            fill_guardcells(grid, BoundaryConditions())
            flame.step(grid, dt)
        s_meas = (front_position(grid) - x0) / (600 * dt)
        assert s_meas == pytest.approx(s_true, rel=0.03)

    def test_progress_bounded(self):
        grid, L = flame_grid()
        flame = ADRFlame(q_carbon=0.0, q_nse=0.0)
        dt = 1e-4
        for _ in range(50):
            fill_guardcells(grid, BoundaryConditions())
            flame.step(grid, dt)
        for b in grid.leaf_blocks():
            phi = grid.interior(b, "fl01")
            assert (phi >= 0.0).all() and (phi <= 1.0).all()

    def test_energy_release_positive(self):
        grid, L = flame_grid()
        flame = ADRFlame(x_carbon_fuel=0.5, turb_coefficient=0.0)
        e0 = grid.total("eint")
        for _ in range(50):
            fill_guardcells(grid, BoundaryConditions())
            flame.step(grid, 1e-4)
        assert grid.total("eint") > e0

    def test_quenches_below_density_cutoff(self):
        grid, L = flame_grid(dens=1e4)  # below the 1e5 cutoff
        flame = ADRFlame(q_carbon=0.0, q_nse=0.0)
        x0 = front_position(grid)
        for _ in range(100):
            fill_guardcells(grid, BoundaryConditions())
            flame.step(grid, 1e-3)
        # diffusionless and reactionless: the front must not march
        assert front_position(grid) == pytest.approx(x0, abs=L / 100)

    def test_nse_follows_carbon_at_high_density(self):
        """With a tiny relaxation time phi2 catches up to phi1 immediately;
        it never runs ahead of the *maximum* progress (NSE ash cannot
        un-burn, even where the diffusive phi1 field locally recedes)."""
        grid, L = flame_grid()
        flame = ADRFlame(q_carbon=0.0, q_nse=0.0, nse_timescale=1e-6)
        for _ in range(30):
            fill_guardcells(grid, BoundaryConditions())
            flame.step(grid, 1e-4)
        for b in grid.leaf_blocks():
            phi1 = grid.interior(b, "fl01")
            phi2 = grid.interior(b, "fl02")
            assert (phi2 >= phi1 - 1e-6).all()
            assert (phi2 <= 1.0).all()
            burned = phi1 > 0.999
            if burned.any():
                assert (phi2[burned] > 0.999).all()

    def test_rejects_bad_dt(self):
        grid, _ = flame_grid()
        with pytest.raises(PhysicsError):
            ADRFlame().step(grid, 0.0)

    def test_timestep_finite_when_burning(self):
        grid, _ = flame_grid()
        dt = ADRFlame().timestep(grid)
        assert 0.0 < dt < np.inf


class TestMonopoleGravity:
    def _star_grid(self, ndim=2, rho_c=1e9, r_star=1e8):
        L = 2e8
        tree = AMRTree(ndim=ndim, nblockx=4, nblocky=4 if ndim > 1 else 1,
                       max_level=0, domain=((-L, L), (-L, L), (-L, L)))
        spec = MeshSpec(ndim=ndim, nxb=16, nyb=16 if ndim > 1 else 1,
                        nzb=1, nguard=4, maxblocks=32)
        grid = Grid(tree, spec)
        for b in grid.leaf_blocks():
            x, y, _ = grid.cell_centers(b)
            r = np.sqrt(x**2 + (y**2 if ndim > 1 else 0.0))
            r = np.broadcast_to(r, grid.interior(b, "dens").shape)
            grid.interior(b, "dens")[:] = np.where(r < r_star, rho_c, 1.0)
        return grid, rho_c, r_star

    def test_enclosed_mass_of_uniform_sphere(self):
        grid, rho_c, r_star = self._star_grid()
        grav = MonopoleGravity()
        grav.update_potential(grid)
        m_expected = 4.0 / 3.0 * np.pi * r_star**3 * rho_c
        assert grav.enclosed_mass(2.0 * r_star) == pytest.approx(
            m_expected, rel=0.05)

    def test_acceleration_inverse_square_outside(self):
        grid, _, r_star = self._star_grid()
        grav = MonopoleGravity()
        grav.update_potential(grid)
        g1 = grav.acceleration_magnitude(1.5 * r_star)
        g2 = grav.acceleration_magnitude(1.9 * r_star)
        assert g1 / g2 == pytest.approx((1.9 / 1.5) ** 2, rel=0.05)

    def test_acceleration_linear_inside_uniform(self):
        grid, _, r_star = self._star_grid()
        grav = MonopoleGravity()
        grav.update_potential(grid)
        g1 = grav.acceleration_magnitude(0.25 * r_star)
        g2 = grav.acceleration_magnitude(0.5 * r_star)
        assert g2 / g1 == pytest.approx(2.0, rel=0.1)

    def test_kick_points_inward(self):
        grid, _, r_star = self._star_grid()
        grav = MonopoleGravity()
        grav.accelerate(grid, dt=1.0e-3)
        for b in grid.leaf_blocks():
            x, y, _ = grid.cell_centers(b)
            vx = grid.interior(b, "velx")
            mask = np.broadcast_to(x, vx.shape) > 1e7
            assert (vx[mask] < 0).all()  # pulled toward the centre

    def test_requires_update_before_query(self):
        grav = MonopoleGravity()
        with pytest.raises(RuntimeError):
            grav.enclosed_mass(1.0)
