"""Hydro solver tests: Riemann exactness, Sod vs analytic, conservation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.eos.apply import apply_eos
from repro.physics.hydro.reconstruct import face_states, limited_slopes
from repro.physics.hydro.riemann import hllc_flux, max_wave_speed
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem, sod_exact
from repro.util.errors import ConfigurationError, PhysicsError


def make_state(rho, u, p, gamma=1.4, n=8):
    return {
        "dens": np.full(n, rho), "velx": np.full(n, u),
        "vely": np.zeros(n), "velz": np.zeros(n),
        "pres": np.full(n, p), "game": np.full(n, gamma),
    }


class TestReconstruct:
    def test_constant_has_zero_slope(self):
        q = np.full((10, 4, 1), 3.0)
        assert np.allclose(limited_slopes(q, 0), 0.0)

    def test_linear_slope_recovered(self):
        q = np.arange(10.0).reshape(10, 1, 1)
        s = limited_slopes(q, 0, "mc")
        assert np.allclose(s[1:-1], 1.0)

    def test_limiter_flattens_extrema(self):
        q = np.array([0.0, 1.0, 0.0]).reshape(3, 1, 1)
        for lim in ("minmod", "mc", "vanleer"):
            s = limited_slopes(q, 0, lim)
            assert s[1, 0, 0] == 0.0

    def test_unknown_limiter(self):
        with pytest.raises(ConfigurationError):
            limited_slopes(np.zeros((4, 1, 1)), 0, "superbee9000")

    def test_face_states_bracket_cell(self):
        q = np.array([1.0, 2.0, 4.0, 8.0]).reshape(4, 1, 1)
        lo, hi = face_states(q, 0)
        assert (lo <= q.reshape(4, 1, 1) + 1e-14).all()
        assert (hi >= q.reshape(4, 1, 1) - 1e-14).all()

    @settings(max_examples=40)
    @given(st.lists(st.floats(-100, 100), min_size=4, max_size=12))
    def test_tvd_property(self, values):
        """Limited face values never exceed neighbour cell ranges."""
        q = np.array(values).reshape(-1, 1, 1)
        lo, hi = face_states(q, 0, "mc")
        for i in range(1, len(values) - 1):
            lo_n = min(values[i - 1], values[i], values[i + 1])
            hi_n = max(values[i - 1], values[i], values[i + 1])
            assert lo_n - 1e-9 <= lo[i, 0, 0] <= hi_n + 1e-9
            assert lo_n - 1e-9 <= hi[i, 0, 0] <= hi_n + 1e-9


class TestHLLC:
    def test_uniform_state_flux_exact(self):
        """For identical L/R states the HLLC flux equals the physical flux."""
        s = make_state(1.0, 2.0, 3.0)
        f = hllc_flux(s, s, axis=0)
        eint = 3.0 / (0.4 * 1.0)
        etot = 1.0 * (eint + 0.5 * 4.0)
        assert np.allclose(f["dens"], 1.0 * 2.0)
        assert np.allclose(f["momx"], 1.0 * 4.0 + 3.0)
        assert np.allclose(f["ener"], 2.0 * (etot + 3.0))

    def test_supersonic_upwinding(self):
        left = make_state(1.0, 10.0, 1.0)
        right = make_state(2.0, 10.0, 2.0)
        f = hllc_flux(left, right, axis=0)
        f_l = hllc_flux(left, left, axis=0)
        assert np.allclose(f["dens"], f_l["dens"])

    def test_symmetry(self):
        """Mirrored states give mirrored fluxes."""
        left = make_state(1.0, 1.0, 1.0)
        right = make_state(0.5, -1.0, 0.4)
        f = hllc_flux(left, right, axis=0)
        ml = {k: np.array(v) for k, v in right.items()}
        mr = {k: np.array(v) for k, v in left.items()}
        ml["velx"], mr["velx"] = -ml["velx"], -mr["velx"]
        fm = hllc_flux(ml, mr, axis=0)
        assert np.allclose(f["dens"], -fm["dens"])
        assert np.allclose(f["momx"], fm["momx"])
        assert np.allclose(f["ener"], -fm["ener"])

    def test_contact_preservation(self):
        """A stationary contact discontinuity produces zero mass flux."""
        left = make_state(1.0, 0.0, 1.0)
        right = make_state(10.0, 0.0, 1.0)
        f = hllc_flux(left, right, axis=0)
        assert np.allclose(f["dens"], 0.0, atol=1e-14)
        assert np.allclose(f["ener"], 0.0, atol=1e-14)

    def test_species_upwinded(self):
        left = make_state(1.0, 1.0, 1.0)
        right = make_state(1.0, 1.0, 1.0)
        left["fl01"] = np.ones(8)
        right["fl01"] = np.zeros(8)
        f = hllc_flux(left, right, axis=0, species=("fl01",))
        assert np.allclose(f["fl01"], 1.0)  # flow to the right carries left

    def test_max_wave_speed(self):
        prim = make_state(1.0, 3.0, 1.4)
        s = max_wave_speed(prim, np.full(8, 1.4), ndim=1)
        assert np.allclose(s, 3.0 + np.sqrt(1.4 * 1.4 / 1.0))


def run_sod(nxb=32, nblockx=4, t_end=0.2, cfl=0.6, max_level=0):
    tree = AMRTree(ndim=1, nblockx=nblockx, max_level=max_level,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=nxb, nyb=1, nzb=1, nguard=4,
                    maxblocks=64)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    problem = SodProblem()
    problem.initialize(grid, eos)
    hydro = HydroUnit(eos, cfl=cfl)
    t = 0.0
    while t < t_end:
        dt = min(hydro.timestep(grid), t_end - t)
        hydro.step(grid, dt)
        t += dt
    xs, ds, us, ps = [], [], [], []
    for b in grid.leaf_blocks():
        x, _, _ = grid.cell_centers(b)
        xs.append(np.broadcast_to(x, grid.interior(b, "dens").shape).ravel())
        ds.append(grid.interior(b, "dens").ravel())
        us.append(grid.interior(b, "velx").ravel())
        ps.append(grid.interior(b, "pres").ravel())
    xs = np.concatenate(xs)
    order = np.argsort(xs)
    return (xs[order], np.concatenate(ds)[order], np.concatenate(us)[order],
            np.concatenate(ps)[order], grid, problem)


class TestSod:
    def test_matches_exact_solution(self):
        x, d, u, p, grid, problem = run_sod()
        de, ue, pe = sod_exact(problem, x, 0.2)
        # L1 errors typical of a 128-zone second-order scheme
        assert np.abs(d - de).mean() < 0.01
        assert np.abs(p - pe).mean() < 0.01
        assert np.abs(u - ue).mean() < 0.02

    def test_conservation_exact(self):
        _, _, _, _, grid, _ = run_sod(t_end=0.1)
        # outflow BCs have not been reached by t=0.1: totals preserved
        assert grid.total("dens", weight=None) == pytest.approx(
            0.5 * 1.0 + 0.5 * 0.125, rel=1e-12)

    def test_convergence_with_resolution(self):
        """Halving dx must shrink the L1 density error."""
        x1, d1, _, _, _, prob = run_sod(nxb=16)
        x2, d2, _, _, _, _ = run_sod(nxb=32)
        e1 = np.abs(d1 - sod_exact(prob, x1, 0.2)[0]).mean()
        e2 = np.abs(d2 - sod_exact(prob, x2, 0.2)[0]).mean()
        assert e2 < 0.75 * e1

    def test_positivity(self):
        _, d, _, p, _, _ = run_sod(cfl=0.8)
        assert (d > 0).all() and (p > 0).all()


class TestAMRConservation:
    def test_mass_energy_conserved_across_jump(self):
        """Hydro over a refinement jump conserves mass and energy exactly
        (the in-sweep flux matching at work)."""
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=2,
                       periodic=(True, True, False),
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        refine_block(grid, BlockId(0, 1, 0))
        rng = np.random.default_rng(5)
        for b in grid.leaf_blocks():
            shape = grid.interior(b, "dens").shape
            grid.interior(b, "dens")[:] = 1.0 + 0.3 * rng.random(shape)
            grid.interior(b, "pres")[:] = 1.0 + 0.3 * rng.random(shape)
            grid.interior(b, "velx")[:] = 0.2 * (rng.random(shape) - 0.5)
            grid.interior(b, "vely")[:] = 0.2 * (rng.random(shape) - 0.5)
            eint = grid.interior(b, "pres") / (0.4 * grid.interior(b, "dens"))
            ke = 0.5 * (grid.interior(b, "velx")**2 + grid.interior(b, "vely")**2)
            grid.interior(b, "eint")[:] = eint
            grid.interior(b, "ener")[:] = eint + ke
        apply_eos(grid, eos)
        from repro.mesh.guardcell import BoundaryConditions

        hydro = HydroUnit(eos, cfl=0.4)
        mass0 = grid.total("dens", weight=None)
        ener0 = grid.total("ener")
        for _ in range(5):
            hydro.step(grid, hydro.timestep(grid))
        assert grid.total("dens", weight=None) == pytest.approx(mass0, rel=1e-12)
        assert grid.total("ener") == pytest.approx(ener0, rel=1e-10)

    def test_without_flux_matching_not_conserved(self):
        """Control: switching the flux matching off breaks conservation."""
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=2,
                       periodic=(True, True, False),
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        refine_block(grid, BlockId(0, 1, 0))
        for b in grid.leaf_blocks():
            x, y, _ = grid.cell_centers(b)
            shape = grid.interior(b, "dens").shape
            # an asymmetric density bump straddling the refinement jump
            grid.interior(b, "dens")[:] = 1.0 + np.broadcast_to(
                np.exp(-(((x - 0.5) ** 2 + (y - 0.3) ** 2) / 0.02)), shape)
            grid.interior(b, "pres")[:] = 1.0
            grid.interior(b, "velx")[:] = 1.0
            eint = grid.interior(b, "pres") / (0.4 * grid.interior(b, "dens"))
            grid.interior(b, "eint")[:] = eint
            grid.interior(b, "ener")[:] = eint + 0.5
        apply_eos(grid, eos)
        hydro = HydroUnit(eos, cfl=0.4, conserve_fluxes=False)
        mass0 = grid.total("dens", weight=None)
        for _ in range(5):
            hydro.step(grid, hydro.timestep(grid))
        assert abs(grid.total("dens", weight=None) - mass0) > 1e-13


class TestHydroUnit:
    def test_bad_cfl_rejected(self):
        with pytest.raises(PhysicsError):
            HydroUnit(GammaLawEOS(), cfl=1.5)

    def test_timestep_scales_with_dx(self):
        _, _, _, _, grid, _ = run_sod(t_end=0.0, max_level=1)
        hydro = HydroUnit(GammaLawEOS(gamma=1.4))
        dt1 = hydro.timestep(grid)
        refine_block(grid, BlockId(0, 0, 0))
        dt2 = hydro.timestep(grid)
        assert dt2 == pytest.approx(dt1 / 2, rel=0.3)

    def test_work_counters_accumulate(self):
        _, _, _, _, grid, _ = run_sod(t_end=0.05)
        # run_sod used its own unit; make a fresh one and step twice
        hydro = HydroUnit(GammaLawEOS(gamma=1.4))
        w1 = hydro.step(grid, 1e-4)
        assert w1.zone_sweeps == grid.tree.n_leaves * 32
        assert hydro.work.eos.calls == 1
        hydro.step(grid, 1e-4)
        assert hydro.work.zone_sweeps == 2 * w1.zone_sweeps


class TestAMRConservation3D:
    def test_mass_energy_conserved_across_jump_3d(self):
        """The 3-d flux-matching path (face restriction over two transverse
        axes, four children per face) conserves exactly too."""
        tree = AMRTree(ndim=3, nblockx=2, nblocky=2, nblockz=2, max_level=2,
                       periodic=(True, True, True),
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=3, nxb=8, nyb=8, nzb=8, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        refine_block(grid, BlockId(0, 1, 0, 1))
        rng = np.random.default_rng(11)
        for b in grid.leaf_blocks():
            shape = grid.interior(b, "dens").shape
            grid.interior(b, "dens")[:] = 1.0 + 0.3 * rng.random(shape)
            grid.interior(b, "pres")[:] = 1.0 + 0.3 * rng.random(shape)
            for v in ("velx", "vely", "velz"):
                grid.interior(b, v)[:] = 0.2 * (rng.random(shape) - 0.5)
            eint = grid.interior(b, "pres") / (0.4 * grid.interior(b, "dens"))
            ke = 0.5 * sum(grid.interior(b, v) ** 2
                           for v in ("velx", "vely", "velz"))
            grid.interior(b, "eint")[:] = eint
            grid.interior(b, "ener")[:] = eint + ke
        apply_eos(grid, eos)
        hydro = HydroUnit(eos, cfl=0.4)
        mass0 = grid.total("dens", weight=None)
        ener0 = grid.total("ener")
        for _ in range(3):
            hydro.step(grid, hydro.timestep(grid))
        assert grid.total("dens", weight=None) == pytest.approx(mass0,
                                                                rel=1e-12)
        assert grid.total("ener") == pytest.approx(ener0, rel=1e-10)

    def test_species_conserved_across_jump_3d(self):
        """Passive scalars ride the same fluxes: rho*X conserved too."""
        from repro.mesh.grid import VariableRegistry

        tree = AMRTree(ndim=3, nblockx=2, nblocky=2, nblockz=2, max_level=2,
                       periodic=(True, True, True),
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=3, nxb=8, nyb=8, nzb=8, nguard=4, maxblocks=64)
        grid = Grid(tree, spec, VariableRegistry().extended("fl01", "fl02"))
        eos = GammaLawEOS(gamma=1.4)
        refine_block(grid, BlockId(0, 0, 1, 0))
        rng = np.random.default_rng(12)
        for b in grid.leaf_blocks():
            shape = grid.interior(b, "dens").shape
            grid.interior(b, "dens")[:] = 1.0 + 0.3 * rng.random(shape)
            grid.interior(b, "pres")[:] = 1.0
            grid.interior(b, "velx")[:] = 0.5
            grid.interior(b, "fl01")[:] = rng.random(shape)
            eint = grid.interior(b, "pres") / (0.4 * grid.interior(b, "dens"))
            grid.interior(b, "eint")[:] = eint
            grid.interior(b, "ener")[:] = eint + 0.125
        apply_eos(grid, eos)
        hydro = HydroUnit(eos, cfl=0.4, species=("fl01", "fl02"))
        burned0 = grid.total("fl01")  # integral of rho * fl01
        for _ in range(3):
            hydro.step(grid, hydro.timestep(grid))
        assert grid.total("fl01") == pytest.approx(burned0, rel=1e-11)
