"""Tests for page traces: canonicalisation, concatenation, interleaving."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hw.trace import PageTrace, interleave

P = 65536  # a page size for convenience


def make(pages, size=P):
    pages = np.asarray(pages, dtype=np.int64) * size
    return PageTrace.from_accesses(pages, np.full(pages.shape, size, dtype=np.int64))


class TestCanonicalisation:
    def test_consecutive_duplicates_collapse(self):
        t = make([1, 1, 1, 2, 2, 1])
        assert t.n_events == 3
        assert t.n_accesses == 6
        assert list(t.weight) == [3, 2, 1]

    def test_empty(self):
        t = PageTrace.empty()
        assert t.n_events == 0
        assert t.n_accesses == 0
        assert t.footprint_bytes() == 0

    def test_non_consecutive_repeats_kept(self):
        t = make([1, 2, 1, 2])
        assert t.n_events == 4

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            PageTrace(np.zeros(2, np.int64), np.zeros(3, np.int64), np.zeros(2, np.int64))

    @given(st.lists(st.integers(0, 5), max_size=50))
    def test_access_count_preserved(self, pages):
        t = make(pages)
        assert t.n_accesses == len(pages)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_no_consecutive_duplicates_remain(self, pages):
        t = make(pages)
        assert (np.diff(t.page) != 0).all()


class TestConcat:
    def test_concat_merges_seam(self):
        a, b = make([1, 2]), make([2, 3])
        c = a.concat(b)
        assert c.n_events == 3
        assert c.n_accesses == 4
        assert list(c.weight) == [1, 2, 1]

    def test_repeated(self):
        t = make([1, 2, 3])
        r = t.repeated(3)
        assert r.n_accesses == 9
        assert r.n_events == 9  # 3 != 1 so no seam merging

    def test_repeated_single_page_collapses(self):
        t = make([7])
        r = t.repeated(5)
        assert r.n_events == 1
        assert r.n_accesses == 5

    def test_repeated_requires_positive(self):
        with pytest.raises(ValueError):
            make([1]).repeated(0)


class TestFootprint:
    def test_unique_pages(self):
        assert make([1, 2, 1, 3]).unique_pages() == 3

    def test_footprint_bytes_uniform(self):
        assert make([1, 2, 3]).footprint_bytes() == 3 * P

    def test_footprint_bytes_mixed_sizes(self):
        page = np.array([0, 2 * 1024 * 1024], dtype=np.int64)
        size = np.array([2 * 1024 * 1024, 65536], dtype=np.int64)
        t = PageTrace.from_accesses(page, size)
        assert t.footprint_bytes() == 2 * 1024 * 1024 + 65536


class TestZeroCopy:
    """Construction must never copy arrays that are already int64 —
    mmap-backed traces from the trace store would silently go resident."""

    def test_int64_arrays_kept_by_identity(self):
        page = np.array([P, 2 * P], dtype=np.int64)
        size = np.full(2, P, dtype=np.int64)
        weight = np.ones(2, dtype=np.int64)
        t = PageTrace(page, size, weight)
        assert t.page is page
        assert t.size is size
        assert t.weight is weight

    def test_readonly_views_preserved(self):
        base = np.arange(6, dtype=np.int64)
        base.setflags(write=False)
        page, size, weight = base[0:2], base[2:4], base[4:6]
        t = PageTrace(page, size, weight)
        assert t.page is page
        assert not t.page.flags.writeable

    def test_memmap_backed_not_copied(self, tmp_path):
        path = tmp_path / "payload.bin"
        np.arange(6, dtype=np.int64).tofile(path)
        mm = np.memmap(path, dtype=np.int64, mode="r")
        t = PageTrace(mm[0:2], mm[2:4], mm[4:6])
        assert isinstance(t.page, np.memmap)
        assert t.page.base is not None  # still a view of the mapping
        assert not t.page.flags.writeable
        assert t.nbytes == 6 * 8

    def test_other_dtypes_still_converted(self):
        t = PageTrace(np.array([1.0, 2.0]), np.array([P, P]),
                      np.array([1, 1], dtype=np.int32))
        assert t.page.dtype == np.int64
        assert t.weight.dtype == np.int64


class TestInterleave:
    def test_round_robin(self):
        a, b = make([1, 2]), make([10, 20])
        t = interleave([a, b])
        assert list(t.page // P) == [1, 10, 2, 20]

    def test_chunked(self):
        a, b = make([1, 2, 3, 4]), make([10, 20])
        t = interleave([a, b], chunk=2)
        assert list(t.page // P) == [1, 2, 10, 20, 3, 4]

    def test_uneven_lengths(self):
        a, b = make([1]), make([10, 20, 30])
        t = interleave([a, b])
        assert t.n_accesses == 4

    def test_empty_inputs(self):
        assert interleave([]).n_events == 0
        assert interleave([PageTrace.empty(), make([1])]).n_accesses == 1
