"""Tests for the cycle model, cache traffic model, and machine specs."""

import pytest
from hypothesis import given, strategies as st

from repro.util import KiB, MiB
from repro.hw.a64fx import A64FX, XEON_E5_2683V3, TLBLevelSpec
from repro.hw.cache import CacheModel
from repro.hw.cpu import CycleBreakdown, CycleModel, WorkCounts
from repro.hw.tlb import TLBStats


class TestMachineSpecs:
    def test_a64fx_shape(self):
        """Section I-A: 4 CMGs x 12 cores, 64KB L1, 8MB L2, 1.8 GHz, SVE-512."""
        assert A64FX.n_cores == 48
        assert A64FX.freq_hz == 1.8e9
        assert A64FX.l1d_bytes == 64 * KiB
        assert A64FX.l2_bytes == 8 * MiB
        assert A64FX.simd_lanes == 8

    def test_tlb_level_validation(self):
        with pytest.raises(ValueError):
            TLBLevelSpec(entries=10, assoc=3, miss_penalty=1.0)

    def test_xeon_has_higher_scalar_ipc(self):
        """Mechanism behind the paper's 'Xeon 3x faster' for branchy code."""
        assert XEON_E5_2683V3.scalar_ipc > 2 * A64FX.scalar_ipc


class TestCycleModel:
    def test_issue_cycles(self):
        model = CycleModel(A64FX)
        bd = model.cycles(WorkCounts(scalar_ops=1.1e9, simd_ops=0.0))
        assert bd.issue_cycles == pytest.approx(1e9)

    def test_simd_cheaper_than_scalar(self):
        model = CycleModel(A64FX)
        scalar = model.cycles(WorkCounts(scalar_ops=8e9)).total
        simd = model.cycles(WorkCounts(simd_ops=1e9)).total  # same flops vectorised
        assert simd < scalar / 2

    def test_memory_stall_scaling(self):
        model = CycleModel(A64FX, mem_exposed=1.0)
        bd = model.cycles(WorkCounts(dram_bytes=A64FX.stream_bw_per_core))
        assert bd.mem_cycles == pytest.approx(A64FX.freq_hz)

    def test_tlb_cycles_included(self):
        model = CycleModel(A64FX)
        stats = TLBStats(accesses=100, l1_misses=50, l2_misses=10)
        bd = model.cycles(WorkCounts(scalar_ops=1e6), stats)
        assert bd.tlb_cycles > 0
        assert bd.total > bd.issue_cycles

    def test_measures_keys(self):
        model = CycleModel(A64FX)
        m = model.measures(WorkCounts(scalar_ops=1e9, simd_ops=1e8, dram_bytes=1e9),
                           TLBStats(accesses=1000, l1_misses=100, l2_misses=10))
        assert set(m) == {"hardware_cycles", "time_s", "sve_per_cycle",
                          "mem_gbytes_per_s", "dtlb_misses_per_s"}
        assert m["time_s"] == pytest.approx(m["hardware_cycles"] / 1.8e9)

    def test_zero_work(self):
        model = CycleModel(A64FX)
        m = model.measures(WorkCounts(), TLBStats())
        assert m["hardware_cycles"] == 0.0
        assert m["time_s"] == 0.0

    @given(s=st.floats(0, 1e12), v=st.floats(0, 1e12), b=st.floats(0, 1e13))
    def test_monotone_in_work(self, s, v, b):
        model = CycleModel(A64FX)
        base = model.cycles(WorkCounts(s, v, b)).total
        more = model.cycles(WorkCounts(s * 2 + 1, v, b)).total
        assert more > base

    def test_breakdown_addition(self):
        a = CycleBreakdown(1.0, 2.0, 3.0)
        b = CycleBreakdown(10.0, 20.0, 30.0)
        c = a + b
        assert c.total == pytest.approx(66.0)

    def test_workcounts_scaled(self):
        w = WorkCounts(1.0, 2.0, 3.0).scaled(10)
        assert (w.scalar_ops, w.simd_ops, w.dram_bytes) == (10.0, 20.0, 30.0)


class TestCacheModel:
    def test_fits_in_cache_pays_cold_only(self):
        cache = CacheModel(cache_bytes=8 * MiB)
        assert cache.dram_traffic(1 * MiB, working_set=1 * MiB, passes=10) == 1 * MiB

    def test_streaming_pays_every_pass(self):
        cache = CacheModel(cache_bytes=8 * MiB)
        traffic = cache.dram_traffic(100 * MiB, working_set=100 * MiB, passes=3)
        assert traffic > 2.5 * 100 * MiB

    def test_zero_bytes(self):
        cache = CacheModel(cache_bytes=8 * MiB)
        assert cache.dram_traffic(0, working_set=0) == 0

    def test_negative_rejected(self):
        cache = CacheModel(cache_bytes=8 * MiB)
        with pytest.raises(ValueError):
            cache.dram_traffic(-1, working_set=1)

    def test_gather_traffic_resident_table(self):
        cache = CacheModel(cache_bytes=8 * MiB)
        small = cache.gather_traffic(10**6, 8, table_bytes=1 * MiB)
        big = cache.gather_traffic(10**6, 8, table_bytes=512 * MiB)
        assert small < big

    def test_gather_traffic_zero(self):
        cache = CacheModel(cache_bytes=8 * MiB)
        assert cache.gather_traffic(0, 8, table_bytes=1 * MiB) == 0
