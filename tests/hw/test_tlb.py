"""Tests for the TLB simulator, incl. cross-check against a naive model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.a64fx import A64FX, TLBGeometry, TLBLevelSpec
from repro.hw.tlb import TLBSimulator, TLBStats
from repro.hw.trace import PageTrace

P = 65536


def trace_of(pages, size=P):
    pages = np.asarray(pages, dtype=np.int64) * size
    return PageTrace.from_accesses(pages, np.full(pages.shape, size, np.int64))


def tiny_geometry(l1_entries=4, l2_entries=8, l2_assoc=2):
    return TLBGeometry(
        l1=TLBLevelSpec(entries=l1_entries, assoc=l1_entries, miss_penalty=7.0),
        l2=TLBLevelSpec(entries=l2_entries, assoc=l2_assoc, miss_penalty=0.0),
        walk_cycles=90.0,
    )


class NaiveLRU:
    """Reference model: plain lists, obviously-correct LRU."""

    def __init__(self, geometry):
        self.g = geometry
        self.l1 = [[] for _ in range(geometry.l1.n_sets)]
        self.l2 = [[] for _ in range(geometry.l2.n_sets)]

    def run(self, trace):
        stats = TLBStats()
        for page, size, w in zip(trace.page, trace.size, trace.weight):
            stats.accesses += int(w)
            vpn = int(page) // int(size)
            s1 = self.l1[vpn % self.g.l1.n_sets]
            if page in s1:
                s1.remove(page)
                s1.append(page)
                continue
            stats.l1_misses += 1
            s2 = self.l2[vpn % self.g.l2.n_sets]
            if page in s2:
                s2.remove(page)
                s2.append(page)
            else:
                stats.l2_misses += 1
                if len(s2) >= self.g.l2.assoc:
                    s2.pop(0)
                s2.append(page)
            if len(s1) >= self.g.l1.assoc:
                s1.pop(0)
            s1.append(page)
        return stats


class TestBasics:
    def test_cold_misses(self):
        sim = TLBSimulator(tiny_geometry())
        stats = sim.run(trace_of([1, 2, 3]))
        assert stats.l1_misses == 3
        assert stats.l2_misses == 3

    def test_hit_after_fill(self):
        sim = TLBSimulator(tiny_geometry())
        stats = sim.run(trace_of([1, 2, 1, 2]))
        assert stats.l1_misses == 2

    def test_capacity_eviction_lru(self):
        # L1 holds 4; touching 5 pages cyclically thrashes it
        sim = TLBSimulator(tiny_geometry(l1_entries=4))
        stats = sim.run(trace_of([1, 2, 3, 4, 5] * 4))
        assert stats.l1_misses == 20  # every access misses L1

    def test_l2_catches_l1_evictions(self):
        sim = TLBSimulator(tiny_geometry(l1_entries=2, l2_entries=8, l2_assoc=8))
        stats = sim.run(trace_of([1, 2, 3] * 3))
        assert stats.l1_misses == 9
        assert stats.l2_misses == 3  # cold only; L2 holds all three

    def test_weighted_accesses(self):
        sim = TLBSimulator(tiny_geometry())
        stats = sim.run(trace_of([1, 1, 1, 2]))
        assert stats.accesses == 4
        assert stats.l1_misses == 2

    def test_reset(self):
        sim = TLBSimulator(tiny_geometry())
        sim.run(trace_of([1, 2]))
        sim.reset()
        stats = sim.run(trace_of([1]))
        assert stats.l1_misses == 1
        assert sim.stats.accesses == 1

    def test_empty_trace(self):
        sim = TLBSimulator(tiny_geometry())
        stats = sim.run(PageTrace.empty())
        assert stats.accesses == 0


class TestHugePagesEffect:
    """The paper's core phenomenon, in miniature."""

    def test_huge_pages_collapse_misses(self):
        # 64 MiB streamed working set
        n_bytes = 64 << 20
        base = trace_of(np.arange(n_bytes // P), size=P).repeated(3)
        huge = trace_of(np.arange(n_bytes // (2 << 20)), size=2 << 20).repeated(3)
        sim = TLBSimulator(A64FX.tlb)
        base_stats = sim.run(base)
        sim.reset()
        huge_stats = sim.run(huge)
        assert huge_stats.l1_misses < base_stats.l1_misses / 20

    def test_working_set_within_reach_mostly_hits(self):
        # 16 entries x 64 KiB = 1 MiB L1 reach; sweep half of that
        pages = np.tile(np.arange(8), 10)
        sim = TLBSimulator(A64FX.tlb)
        stats = sim.run(trace_of(pages))
        assert stats.l1_misses == 8  # cold only


class TestSteadyState:
    def test_steady_state_below_cold(self):
        sim = TLBSimulator(A64FX.tlb)
        step = trace_of(np.tile(np.arange(12), 4))
        cold = sim.run(step)
        sim.reset()
        steady = sim.run_steady_state(step, warmup=1)
        assert steady.l1_misses <= cold.l1_misses

    def test_scaled_extrapolation(self):
        stats = TLBStats(accesses=100, l1_misses=10, l2_misses=1)
        big = stats.scaled(50)
        assert big.l1_misses == 500
        assert big.accesses == 5000


class TestExposedCycles:
    def test_exposed_cycles_formula(self):
        g = tiny_geometry()
        stats = TLBStats(accesses=100, l1_misses=10, l2_misses=2)
        expected = (10 * 7.0 + 2 * 90.0) * g.exposed_fraction
        assert stats.exposed_walk_cycles(g) == pytest.approx(expected)

    def test_paper_scale_exposed_cost_per_miss(self):
        """The A64FX defaults imply ~5-10 exposed cycles per L1 miss for
        L2-resident working sets, matching the paper's implied deltas."""
        g = A64FX.tlb
        stats = TLBStats(accesses=1000, l1_misses=100, l2_misses=10)
        per_miss = stats.exposed_walk_cycles(g) / stats.l1_misses
        assert 2.0 < per_miss < 15.0


class TestMultiGeometryBatch:
    """run_steady_segments_multi shares one stack-distance pass across
    geometries; its contract is exact agreement with per-geometry calls."""

    def _geometries(self):
        from dataclasses import replace
        geos = [tiny_geometry(l1_entries=e) for e in (2, 4, 8, 16)]
        geos.append(TLBGeometry(
            l1=TLBLevelSpec(entries=8, assoc=2, miss_penalty=7.0),
            l2=TLBLevelSpec(entries=16, assoc=4, miss_penalty=0.0),
            walk_cycles=90.0))
        geos.append(A64FX.tlb)
        geos.append(replace(A64FX.tlb, l2=replace(A64FX.tlb.l2, entries=512)))
        geos.append(A64FX.tlb)  # duplicate exercises the shared-result path
        return geos

    def test_bit_identical_to_serial_sweep(self):
        from repro.hw.tlb import run_steady_segments, run_steady_segments_multi
        rng = np.random.default_rng(11)
        traces = [trace_of(rng.integers(0, p, n))
                  for n, p in ((600, 5), (900, 60), (400, 300))]
        for streams in (None, [0, 0, 1], [0, 1, 2]):
            batched = run_steady_segments_multi(self._geometries(), traces,
                                                streams)
            for geo, got in zip(self._geometries(), batched):
                want = run_steady_segments(geo, traces, streams)
                assert [(s.accesses, s.l1_misses, s.l2_misses) for s in got] \
                    == [(s.accesses, s.l1_misses, s.l2_misses) for s in want]

    def test_degenerate_inputs(self):
        from repro.hw.tlb import run_steady_segments_multi
        geos = self._geometries()
        assert run_steady_segments_multi([], [trace_of([1])]) == []
        assert run_steady_segments_multi(geos, []) == [[] for _ in geos]
        rows = run_steady_segments_multi(geos, [PageTrace.empty()])
        assert all(row[0].l1_misses == 0 for row in rows)

    def test_results_are_independent_copies(self):
        """Duplicate geometries must not alias mutable stats objects."""
        from repro.hw.tlb import run_steady_segments_multi
        geos = [A64FX.tlb, A64FX.tlb]
        rows = run_steady_segments_multi(geos, [trace_of([1, 2, 3])])
        rows[0][0].l1_misses = -99
        assert rows[1][0].l1_misses != -99


@settings(max_examples=60, deadline=None)
@given(
    pages=st.lists(st.integers(0, 30), min_size=1, max_size=300),
    l1e=st.sampled_from([2, 4, 8]),
    l2e=st.sampled_from([4, 8, 16]),
    l2a=st.sampled_from([1, 2, 4]),
)
def test_matches_naive_reference(pages, l1e, l2e, l2a):
    geometry = tiny_geometry(l1_entries=l1e, l2_entries=l2e, l2_assoc=l2a)
    t = trace_of(pages)
    fast = TLBSimulator(geometry).run(t)
    slow = NaiveLRU(geometry).run(t)
    assert (fast.accesses, fast.l1_misses, fast.l2_misses) == (
        slow.accesses,
        slow.l1_misses,
        slow.l2_misses,
    )


@settings(max_examples=30, deadline=None)
@given(pages=st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_miss_bounds(pages):
    """Misses never exceed deduplicated events; L2 misses never exceed L1."""
    t = trace_of(pages)
    stats = TLBSimulator(A64FX.tlb).run(t)
    assert stats.l2_misses <= stats.l1_misses <= t.n_events
    assert stats.l1_misses >= t.unique_pages() > 0 or t.n_events == 0
