"""The serving metrics layer: counters, histograms, exposition formats."""

import json
import math
import threading

from repro.serve.metrics import (
    DEFAULT_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.percentile(50) is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms"] is None

    def test_exact_percentiles_from_samples(self):
        h = Histogram()
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            h.observe(v)
        assert h.percentile(50) == 5
        assert h.percentile(90) == 9
        assert h.percentile(100) == 10
        assert h.min_ms == 1 and h.max_ms == 10
        assert h.sum_ms == 55 and h.count == 10

    def test_bucket_counts_cumulate_correctly(self):
        h = Histogram()
        for v in [0.5, 1.5, 7.0, 40.0, 70000.0]:
            h.observe(v)
        # each value lands in the first bucket whose bound >= value
        by_bound = dict(zip(h.buckets_ms, h.counts))
        assert by_bound[1.0] == 1       # 0.5
        assert by_bound[2.0] == 1       # 1.5
        assert by_bound[10.0] == 1      # 7.0
        assert by_bound[50.0] == 1      # 40.0
        assert by_bound[math.inf] == 1  # 70000.0
        assert sum(h.counts) == h.count == 5

    def test_bucket_fallback_when_samples_overflow(self, monkeypatch):
        monkeypatch.setattr("repro.serve.metrics.SAMPLE_CAP", 4)
        h = Histogram()
        for v in [1, 1, 1, 1, 100, 100, 100, 100]:
            h.observe(v)
        # retention capped at 4 of 8: percentile answers from buckets
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 100.0

    def test_negative_values_clamp_to_zero(self):
        h = Histogram()
        h.observe(-3.0)
        assert h.min_ms == 0.0
        assert h.count == 1


class TestRegistry:
    def test_inc_and_labels(self):
        m = MetricsRegistry()
        m.inc("req", experiment="all", cache="cold")
        m.inc("req", experiment="all", cache="cold")
        m.inc("req", experiment="toys", cache="memory")
        assert m.counter_value("req", experiment="all", cache="cold") == 2
        assert m.counter_total("req") == 3

    def test_set_is_absolute(self):
        m = MetricsRegistry()
        m.set("replays", 7)
        m.set("replays", 7)  # mirroring the same total twice is idempotent
        assert m.counter_total("replays") == 7

    def test_prometheus_rendering(self):
        m = MetricsRegistry()
        m.inc("serve_requests_total", experiment="all", cache="cold")
        m.observe("serve_request_ms", 3.0, cache="cold")
        text = m.render_prometheus()
        assert "# TYPE serve_requests_total counter" in text
        assert ('serve_requests_total{cache="cold",experiment="all"} 1'
                in text)
        assert "# TYPE serve_request_ms histogram" in text
        assert 'serve_request_ms_bucket{cache="cold",le="5.0"} 1' in text
        assert 'serve_request_ms_bucket{cache="cold",le="+Inf"} 1' in text
        assert 'serve_request_ms_count{cache="cold"} 1' in text
        assert text.endswith("\n")

    def test_render_dict_is_json_ready(self):
        m = MetricsRegistry()
        m.inc("c", kind="x")
        m.inc("plain")
        m.observe("h", 12.5)
        doc = m.render_dict()
        json.dumps(doc)
        assert doc["counters"]["c"]["kind=x"] == 1
        assert doc["counters"]["plain"]["_"] == 1
        assert doc["histograms"]["h"]["_"]["count"] == 1
        assert doc["histograms"]["h"]["_"]["p50_ms"] == 12.5

    def test_thread_safety_under_contention(self):
        m = MetricsRegistry()

        def work():
            for _ in range(500):
                m.inc("n")
                m.observe("lat", 1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter_total("n") == 4000
        assert m.histogram("lat").count == 4000

    def test_default_buckets_are_sorted_and_capped_by_inf(self):
        assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)
        assert math.isinf(DEFAULT_BUCKETS_MS[-1])
