"""Singleflight: N concurrent identical requests, one computation.

Deterministic, no timing assumptions: leaders block on explicit events,
waiters are admitted while the leader is provably in flight.
"""

import asyncio

import pytest

from repro.serve.singleflight import Singleflight


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_single_caller_is_leader(self):
        async def scenario():
            sf = Singleflight()

            async def thunk():
                return 42

            value, coalesced = await sf.do("k", thunk)
            return sf, value, coalesced

        sf, value, coalesced = run(scenario())
        assert (value, coalesced) == (42, False)
        assert sf.stats.leaders == 1
        assert sf.stats.coalesced == 0
        assert sf.inflight() == ()

    def test_concurrent_identical_requests_coalesce(self):
        async def scenario():
            sf = Singleflight()
            release = asyncio.Event()
            computations = 0

            async def thunk():
                nonlocal computations
                computations += 1
                await release.wait()
                return "result"

            leader = asyncio.create_task(sf.do("k", thunk))
            while not sf.inflight():  # leader provably registered
                await asyncio.sleep(0)
            waiters = [asyncio.create_task(sf.do("k", thunk))
                       for _ in range(10)]
            while sf.stats.coalesced < 10:  # all joined, none computing
                await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(leader, *waiters)
            return sf, computations, results

        sf, computations, results = run(scenario())
        assert computations == 1
        assert [value for value, _ in results] == ["result"] * 11
        assert [flag for _, flag in results] == [False] + [True] * 10
        assert sf.stats.leaders == 1
        assert sf.stats.coalesced == 10
        assert sf.inflight() == ()

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            sf = Singleflight()

            async def make(key):
                return await sf.do(key, lambda: asyncio.sleep(0, result=key))

            results = await asyncio.gather(make("a"), make("b"), make("c"))
            return sf, results

        sf, results = run(scenario())
        assert sf.stats.leaders == 3
        assert sf.stats.coalesced == 0
        assert sorted(v for v, _ in results) == ["a", "b", "c"]

    def test_sequential_requests_recompute(self):
        """Singleflight is not a cache: a key finished is a key gone."""
        async def scenario():
            sf = Singleflight()
            calls = 0

            async def thunk():
                nonlocal calls
                calls += 1
                return calls

            first, _ = await sf.do("k", thunk)
            second, _ = await sf.do("k", thunk)
            return sf, first, second

        sf, first, second = run(scenario())
        assert (first, second) == (1, 2)
        assert sf.stats.leaders == 2


class TestFailures:
    def test_leader_failure_propagates_to_waiters(self):
        async def scenario():
            sf = Singleflight()
            release = asyncio.Event()

            async def thunk():
                await release.wait()
                raise ValueError("computation failed")

            leader = asyncio.create_task(sf.do("k", thunk))
            while not sf.inflight():
                await asyncio.sleep(0)
            waiter = asyncio.create_task(sf.do("k", thunk))
            while sf.stats.coalesced < 1:
                await asyncio.sleep(0)
            release.set()
            with pytest.raises(ValueError):
                await leader
            with pytest.raises(ValueError):
                await waiter
            return sf

        sf = run(scenario())
        assert sf.stats.failures == 1
        assert sf.inflight() == ()  # failed key cleared: next caller retries

    def test_failure_then_retry_succeeds(self):
        async def scenario():
            sf = Singleflight()

            async def boom():
                raise RuntimeError("first try")

            async def ok():
                return "second try"

            with pytest.raises(RuntimeError):
                await sf.do("k", boom)
            value, coalesced = await sf.do("k", ok)
            return sf, value, coalesced

        sf, value, coalesced = run(scenario())
        assert (value, coalesced) == ("second try", False)
        assert sf.stats.leaders == 2
        assert sf.stats.failures == 1

    def test_waiter_cancellation_leaves_leader_running(self):
        """A cancelled waiter must not cancel the shared computation."""
        async def scenario():
            sf = Singleflight()
            release = asyncio.Event()

            async def thunk():
                await release.wait()
                return "done"

            leader = asyncio.create_task(sf.do("k", thunk))
            while not sf.inflight():
                await asyncio.sleep(0)
            waiter = asyncio.create_task(sf.do("k", thunk))
            while sf.stats.coalesced < 1:
                await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            release.set()
            value, coalesced = await leader
            return value, coalesced

        value, coalesced = run(scenario())
        assert (value, coalesced) == ("done", False)
