"""The HTTP front end, end to end over an ephemeral port.

Raw asyncio-socket clients against a real server instance — the same
transport the soak harness uses — with fake registry experiments for
speed and determinism.
"""

import asyncio
import json
import threading

import pytest

from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec
from repro.perfmodel.session import ReplaySession
from repro.serve.http import HttpServer
from repro.serve.service import ExperimentService


@pytest.fixture()
def fake(monkeypatch):
    def run(*, quick=False):
        return f"HTTP FAKE quick={quick}"

    monkeypatch.setitem(registry._EXPERIMENTS, "http-fake",
                        ExperimentSpec("http-fake", "a test fixture", run))


async def request(host, port, raw: bytes) -> tuple[int, dict, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        k, _, v = line.partition(":")
        headers[k.strip().lower()] = v.strip()
    return status, headers, body


def get(path: str, *, host: str) -> bytes:
    return (f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n").encode()


def with_server(scenario):
    """Run *scenario(server)* against a live server on an ephemeral port."""
    async def runner():
        service = ExperimentService(session=ReplaySession(persist=False))
        server = HttpServer(service)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.close()
            service.close()

    return asyncio.run(runner())


class TestEndpoints:
    def test_healthz(self):
        async def scenario(server):
            return await request(server.host, server.port,
                                 get("/healthz", host=server.host))

        status, headers, body = with_server(scenario)
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"status": "ok"}
        assert int(headers["content-length"]) == len(body)

    def test_report_get_and_post_agree(self, fake):
        async def scenario(server):
            s1, _, b1 = await request(
                server.host, server.port,
                get("/v1/report/http-fake?quick=1", host=server.host))
            post = json.dumps({"name": "http-fake", "quick": True}).encode()
            raw = (f"POST /v1/report HTTP/1.1\r\nHost: {server.host}\r\n"
                   f"Content-Length: {len(post)}\r\n"
                   "Connection: close\r\n\r\n").encode() + post
            s2, _, b2 = await request(server.host, server.port, raw)
            return s1, json.loads(b1), s2, json.loads(b2)

        s1, doc1, s2, doc2 = with_server(scenario)
        assert s1 == s2 == 200
        assert doc1["text"] == doc2["text"] == "HTTP FAKE quick=True"
        assert doc1["sha256"] == doc2["sha256"]
        assert doc1["cache"] == "cold"
        assert doc2["cache"] == "memory"  # same key, served from memory

    def test_experiments_listing(self):
        async def scenario(server):
            return await request(server.host, server.port,
                                 get("/v1/experiments", host=server.host))

        status, _, body = with_server(scenario)
        assert status == 200
        names = [e["name"] for e in json.loads(body)["experiments"]]
        assert "all" in names and "table1" in names

    def test_stats_schema(self, fake):
        async def scenario(server):
            await request(server.host, server.port,
                          get("/v1/report/http-fake", host=server.host))
            return await request(server.host, server.port,
                                 get("/v1/stats", host=server.host))

        status, _, body = with_server(scenario)
        doc = json.loads(body)
        assert status == 200
        assert doc["schema"] == "repro.serve/1"
        assert doc["requests"]["total"] == 1
        assert doc["singleflight"]["leaders"] == 1

    def test_metrics_exposition(self, fake):
        async def scenario(server):
            await request(server.host, server.port,
                          get("/v1/report/http-fake", host=server.host))
            return await request(server.host, server.port,
                                 get("/metrics", host=server.host))

        status, headers, body = with_server(scenario)
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode()
        assert ('serve_requests_total{cache="cold",experiment="http-fake"} 1'
                in text)
        assert "serve_request_ms_bucket" in text
        assert "serve_singleflight_leaders_total 1" in text


class TestErrors:
    def test_unknown_experiment_404_with_suggestion(self):
        async def scenario(server):
            return await request(server.host, server.port,
                                 get("/v1/report/tabel1", host=server.host))

        status, _, body = with_server(scenario)
        assert status == 404
        assert "table1" in json.loads(body)["error"]

    def test_bad_quick_value_400(self, fake):
        async def scenario(server):
            return await request(
                server.host, server.port,
                get("/v1/report/http-fake?quick=maybe", host=server.host))

        status, _, body = with_server(scenario)
        assert status == 400
        assert "quick" in json.loads(body)["error"]

    def test_bad_json_body_400(self):
        async def scenario(server):
            raw = (f"POST /v1/report HTTP/1.1\r\nHost: {server.host}\r\n"
                   "Content-Length: 9\r\nConnection: close\r\n\r\n"
                   "not json!").encode()
            return await request(server.host, server.port, raw)

        status, _, body = with_server(scenario)
        assert status == 400

    def test_unknown_route_404(self):
        async def scenario(server):
            return await request(server.host, server.port,
                                 get("/nope", host=server.host))

        status, _, _ = with_server(scenario)
        assert status == 404

    def test_metrics_post_405(self):
        async def scenario(server):
            raw = (f"POST /metrics HTTP/1.1\r\nHost: {server.host}\r\n"
                   "Content-Length: 0\r\nConnection: close\r\n\r\n").encode()
            return await request(server.host, server.port, raw)

        status, _, _ = with_server(scenario)
        assert status == 405

    def test_computation_failure_500_and_server_survives(self, monkeypatch):
        def run(*, quick=False):
            raise ValueError("model exploded")

        monkeypatch.setitem(registry._EXPERIMENTS, "boom-exp",
                            ExperimentSpec("boom-exp", "raises", run))

        async def scenario(server):
            s1, _, b1 = await request(
                server.host, server.port,
                get("/v1/report/boom-exp", host=server.host))
            s2, _, _ = await request(server.host, server.port,
                                     get("/healthz", host=server.host))
            return s1, json.loads(b1), s2

        s1, doc, s2 = with_server(scenario)
        assert s1 == 500
        assert "ValueError" in doc["error"]
        assert s2 == 200  # still serving

    def test_oversized_body_413(self):
        async def scenario(server):
            raw = (f"POST /v1/report HTTP/1.1\r\nHost: {server.host}\r\n"
                   f"Content-Length: {128 * 1024}\r\n"
                   "Connection: close\r\n\r\n").encode()
            return await request(server.host, server.port, raw)

        status, _, _ = with_server(scenario)
        assert status == 413


class TestKeepAlive:
    def test_two_requests_one_connection(self, fake):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            docs = []
            for i in range(2):
                close = "close" if i == 1 else "keep-alive"
                writer.write(
                    (f"GET /v1/report/http-fake HTTP/1.1\r\n"
                     f"Host: {server.host}\r\n"
                     f"Connection: {close}\r\n\r\n").encode())
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                length = int([line for line in head.decode().split("\r\n")
                              if line.lower().startswith("content-length")
                              ][0].split(":")[1])
                body = await reader.readexactly(length)
                docs.append(json.loads(body))
            writer.close()
            await writer.wait_closed()
            return docs

        docs = with_server(scenario)
        assert docs[0]["cache"] == "cold"
        assert docs[1]["cache"] == "memory"


class TestOverloadStatus:
    """The HTTP overload contract: 503 + Retry-After on shed, 504 on a
    missed deadline — machine-readable bodies either way."""

    @staticmethod
    def _overloaded_server(scenario, *, gate, **service_kwargs):
        def blocking_run(*, quick=False):
            gate.wait(5.0)
            return "slow report"

        async def runner():
            import repro.experiments.registry as reg
            saved = dict(reg._EXPERIMENTS)
            reg._EXPERIMENTS["slow-a"] = ExperimentSpec(
                "slow-a", "slow fixture", blocking_run)
            reg._EXPERIMENTS["slow-b"] = ExperimentSpec(
                "slow-b", "slow fixture", blocking_run)
            service = ExperimentService(
                session=ReplaySession(persist=False), **service_kwargs)
            server = HttpServer(service)
            await server.start()
            try:
                return await scenario(server)
            finally:
                await server.close()
                service.close()
                reg._EXPERIMENTS.clear()
                reg._EXPERIMENTS.update(saved)

        return asyncio.run(runner())

    def test_shed_is_503_with_retry_after(self):
        gate = threading.Event()

        async def scenario(server):
            leader = asyncio.ensure_future(request(
                server.host, server.port,
                get("/v1/report/slow-a?quick=1", host=server.host)))
            await asyncio.sleep(0.05)  # leader admitted and computing
            shed = await request(
                server.host, server.port,
                get("/v1/report/slow-b?quick=1", host=server.host))
            gate.set()
            done = await leader
            return shed, done

        (status, headers, body), (lstatus, _, _) = self._overloaded_server(
            scenario, gate=gate, admission_limit=1, retry_after_s=0.25)
        assert status == 503
        assert lstatus == 200
        assert headers["retry-after"] == "0.250"
        doc = json.loads(body)
        assert "admission queue full" in doc["error"]
        assert doc["retry_after_s"] == pytest.approx(0.25)

    def test_deadline_miss_is_504(self):
        gate = threading.Event()

        async def scenario(server):
            response = await request(
                server.host, server.port,
                get("/v1/report/slow-a?quick=1", host=server.host))
            gate.set()
            return response

        status, _, body = self._overloaded_server(
            scenario, gate=gate, request_timeout_s=0.05)
        assert status == 504
        doc = json.loads(body)
        assert "deadline" in doc["error"]
