"""The experiment service core: cache provenance, coalescing, pinning.

Fake registry experiments (injected via monkeypatch) keep these tests
fast and deterministic; one integration test runs a real (cheap)
registry target through the service and compares bytes against the
offline pipeline.
"""

import asyncio
import hashlib
import threading

import pytest

from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec
from repro.perfmodel.session import ReplaySession, session_scope
from repro.serve.service import (
    MEMO_KIND,
    ExperimentService,
    ReportResponse,
    UnknownExperimentError,
)


@pytest.fixture()
def fake(monkeypatch):
    """Register a deterministic fake experiment; returns its call log."""
    calls = []

    def run(*, quick=False):
        calls.append(quick)
        return f"FAKE REPORT quick={quick} call={len(calls)}"

    monkeypatch.setitem(registry._EXPERIMENTS, "fake-exp",
                        ExperimentSpec("fake-exp", "a test fixture", run))
    return calls


def make_service(tmp_path, **kwargs):
    return ExperimentService(
        session=ReplaySession(store_dir=tmp_path / "store"), **kwargs)


class TestServing:
    def test_cold_then_memory(self, tmp_path, fake):
        async def scenario(service):
            first = await service.report("fake-exp", quick=True)
            second = await service.report("fake-exp", quick=True)
            return first, second

        service = make_service(tmp_path)
        first, second = asyncio.run(scenario(service))
        assert first.cache == "cold"
        assert second.cache == "memory"
        assert first.text == second.text
        assert fake == [True]  # one computation
        assert first.sha256 == hashlib.sha256(
            first.text.encode()).hexdigest()
        service.close()

    def test_quick_and_full_are_distinct_requests(self, tmp_path, fake):
        async def scenario(service):
            a = await service.report("fake-exp", quick=True)
            b = await service.report("fake-exp", quick=False)
            return a, b

        service = make_service(tmp_path)
        a, b = asyncio.run(scenario(service))
        assert a.key != b.key
        assert a.text != b.text
        assert fake == [True, False]
        service.close()

    def test_warm_restart_serves_from_store(self, tmp_path, fake):
        service1 = make_service(tmp_path)
        first = asyncio.run(service1.report("fake-exp", quick=True))
        service1.close()

        # a new process over the same store: no recompute, cache="warm"
        service2 = make_service(tmp_path)
        second = asyncio.run(service2.report("fake-exp", quick=True))
        assert second.cache == "warm"
        assert second.text == first.text
        assert fake == [True]  # the restart did not call the runner again
        service2.close()

    def test_unknown_experiment_raises_with_suggestion(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(UnknownExperimentError) as err:
            asyncio.run(service.report("tabel1"))
        assert "table1" in str(err.value)  # did-you-mean survives the wrap
        service.close()

    def test_metrics_and_report_reflect_requests(self, tmp_path, fake):
        async def scenario(service):
            await service.report("fake-exp", quick=True)
            await service.report("fake-exp", quick=True)

        service = make_service(tmp_path)
        asyncio.run(scenario(service))
        m = service.metrics
        assert m.counter_value("serve_requests_total",
                               experiment="fake-exp", cache="cold") == 1
        assert m.counter_value("serve_requests_total",
                               experiment="fake-exp", cache="memory") == 1
        assert m.histogram("serve_request_ms", cache="cold").count == 1
        doc = service.service_report()
        assert doc["schema"] == "repro.serve/1"
        assert doc["requests"] == {"total": 2, "distinct": 1,
                                   "shed": 0, "timeouts": 0}
        assert doc["singleflight"]["leaders"] == 1
        assert doc["store"]["entries"] >= 1
        import json
        json.dumps(doc)
        service.close()


class TestShutdown:
    """Service exit must tear the session's replay workers down — the
    leak this guards against: a SIGINT that skipped ``close()`` left
    forked pool workers running past the service process."""

    def _service_with_pool(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "2")
        service = make_service(tmp_path)
        executor = service.session._executor_for_batch()
        executor._ensure_pool()
        assert executor._pool is not None
        return service, executor

    def test_close_shuts_the_replay_pool(self, tmp_path, monkeypatch):
        service, executor = self._service_with_pool(tmp_path, monkeypatch)
        service.close()
        assert executor._pool is None
        assert service.session._executor is None

    def test_context_manager_closes_on_error(self, tmp_path, monkeypatch):
        service, executor = self._service_with_pool(tmp_path, monkeypatch)
        with pytest.raises(RuntimeError):
            with service:
                raise RuntimeError("request loop died")
        assert executor._pool is None

    def test_close_is_idempotent(self, tmp_path, fake):
        service = make_service(tmp_path)
        asyncio.run(service.report("fake-exp", quick=True))
        service.close()
        service.close()  # the SIGTERM path and a finally may both call it

    def test_trace_tier_metrics_mirrored(self, tmp_path, fake):
        service = make_service(tmp_path)
        asyncio.run(service.report("fake-exp", quick=True))
        doc = service.service_report()  # mirrors the session backends
        assert "trace_store" in doc
        m = service.metrics
        assert m.counter_value("serve_synthesis_total") == 0
        assert m.counter_value("serve_replay_hits_total",
                               layer="trace-store") == 0
        service.close()


class TestCoalescingAndPinning:
    def test_concurrent_requests_coalesce_and_pin(self, tmp_path,
                                                  monkeypatch):
        """While the leader computes, (a) identical requests coalesce
        instead of recomputing, and (b) the leader's memo entry is
        pinned so eviction cannot race it."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def run(*, quick=False):
            calls.append(quick)
            started.set()
            assert release.wait(timeout=60)
            return "SLOW REPORT"

        monkeypatch.setitem(registry._EXPERIMENTS, "slow-exp",
                            ExperimentSpec("slow-exp", "blocks", run))
        service = make_service(tmp_path)

        async def scenario():
            leader = asyncio.create_task(service.report("slow-exp"))
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait)
            # the computation is provably in flight: its key is pinned
            engine, key = service.resolve("slow-exp", False)
            store = service.session.store
            assert store.is_pinned(f"memo-{key}")
            waiters = [asyncio.create_task(service.report("slow-exp"))
                       for _ in range(5)]
            while service.singleflight.stats.coalesced < 5:
                await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(leader, *waiters)
            assert not store.is_pinned(f"memo-{key}")
            return key, results

        key, results = asyncio.run(scenario())
        assert calls == [False]  # exactly one computation
        assert results[0].cache == "cold"
        assert all(r.cache == "coalesced" for r in results[1:])
        assert len({r.sha256 for r in results}) == 1
        # the memo persisted and survives an aggressive eviction pass
        # (nothing is pinned now, but the entry exists and loads)
        store = service.session.store
        assert store.load(f"memo-{key}") == "SLOW REPORT"
        service.close()

    def test_leader_failure_propagates_then_recovers(self, tmp_path,
                                                     monkeypatch):
        attempts = []

        def run(*, quick=False):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient failure")
            return "RECOVERED"

        monkeypatch.setitem(registry._EXPERIMENTS, "flaky-exp",
                            ExperimentSpec("flaky-exp", "fails once", run))
        service = make_service(tmp_path)
        with pytest.raises(RuntimeError):
            asyncio.run(service.report("flaky-exp"))
        assert service.singleflight.stats.failures == 1
        response = asyncio.run(service.report("flaky-exp"))
        assert response.text == "RECOVERED"
        assert response.cache == "cold"
        service.close()


class TestRealTargetIdentity:
    def test_matrix_quick_matches_offline(self, tmp_path):
        """A real registry target through the service is byte-identical
        to the offline CLI run (the soak checks all nine; this keeps a
        cheap end-to-end instance in the tier-1 suite)."""
        with session_scope(ReplaySession(persist=False)):
            offline = registry.experiment("matrix").run(quick=True)

        service = make_service(tmp_path)
        served = asyncio.run(service.report("matrix", quick=True))
        assert served.text == offline
        assert served.sha256 == hashlib.sha256(
            offline.encode()).hexdigest()
        service.close()


class TestResponseShape:
    def test_to_json_roundtrips(self):
        import json
        response = ReportResponse(
            name="x", quick=True, engine="fast", key="k", text="t",
            sha256="s", cache="cold", elapsed_ms=1.5)
        doc = json.loads(json.dumps(response.to_json()))
        assert doc["name"] == "x"
        assert doc["cache"] == "cold"

    def test_request_key_matches_session_memo_key(self):
        assert (ExperimentService.request_key("a", True, "fast")
                == ReplaySession.memo_key(MEMO_KIND, ("a", True, "fast")))


class TestOverloadControl:
    """Admission control and per-request deadlines (the resilience PR's
    service leg): would-be-new-leaders beyond the limit shed with 503
    semantics, deadline misses abandon the wait but never the leader."""

    def test_config_validation(self, tmp_path):
        with pytest.raises(Exception):
            make_service(tmp_path, request_timeout_s=0.0)
        with pytest.raises(Exception):
            make_service(tmp_path, admission_limit=0)
        with pytest.raises(Exception):
            make_service(tmp_path, retry_after_s=-1.0)

    def test_burst_sheds_synchronously(self, tmp_path, monkeypatch):
        """A same-tick burst beyond the limit sheds immediately — the
        admission ledger is synchronous, unlike the singleflight map
        (whose tasks only start on the next loop tick)."""
        import asyncio as aio

        gate = threading.Event()

        def blocking_run(*, quick=False):
            gate.wait(5.0)
            return f"slow quick={quick}"

        monkeypatch.setitem(
            registry._EXPERIMENTS, "slow-a",
            ExperimentSpec("slow-a", "slow fixture", blocking_run))
        monkeypatch.setitem(
            registry._EXPERIMENTS, "slow-b",
            ExperimentSpec("slow-b", "slow fixture", blocking_run))

        from repro.serve.service import ServiceOverloaded

        async def scenario(service):
            first = aio.ensure_future(service.report("slow-a", quick=True))
            await aio.sleep(0)  # let the leader start computing
            with pytest.raises(ServiceOverloaded) as exc_info:
                await service.report("slow-b", quick=True)
            assert exc_info.value.retry_after_s == service.retry_after_s
            # coalescing keys are always admitted: same key joins
            second = aio.ensure_future(service.report("slow-a", quick=True))
            await aio.sleep(0)
            gate.set()
            a, b = await aio.gather(first, second)
            return a, b

        service = make_service(tmp_path, admission_limit=1,
                               retry_after_s=0.25)
        a, b = asyncio.run(scenario(service))
        assert a.text == b.text
        assert service.metrics.counter_value(
            "serve_shed_total", experiment="slow-b") == 1
        assert service._admitted == {}  # ledger drained
        # once computed, the response serves from memory: never shed
        again = asyncio.run(service.report("slow-a", quick=True))
        assert again.cache == "memory"
        service.close()

    def test_deadline_miss_shields_the_leader(self, tmp_path, monkeypatch):
        """A request that outlives its deadline raises DeadlineExceeded,
        but the computation finishes and lands in response memory."""
        gate = threading.Event()

        def blocking_run(*, quick=False):
            gate.wait(5.0)
            return "eventually done"

        monkeypatch.setitem(
            registry._EXPERIMENTS, "laggard",
            ExperimentSpec("laggard", "slow fixture", blocking_run))

        from repro.serve.service import DeadlineExceeded

        async def scenario(service):
            with pytest.raises(DeadlineExceeded):
                await service.report("laggard", quick=True)
            gate.set()
            # the shielded leader keeps running; wait for it to land
            for _ in range(200):
                await asyncio.sleep(0.01)
                if not service._admitted:
                    break
            return await service.report("laggard", quick=True)

        service = make_service(tmp_path, request_timeout_s=0.05)
        response = asyncio.run(scenario(service))
        assert response.text == "eventually done"
        assert response.cache == "memory"
        assert service.metrics.counter_value(
            "serve_timeout_total", experiment="laggard") == 1
        service.close()

    def test_service_report_carries_overload_block(self, tmp_path):
        service = make_service(tmp_path, admission_limit=3,
                               request_timeout_s=1.5, retry_after_s=0.2)
        doc = service.service_report()
        assert doc["overload"] == {"request_timeout_s": 1.5,
                                   "admission_limit": 3,
                                   "retry_after_s": 0.2}
        assert doc["requests"]["shed"] == 0
        assert doc["requests"]["timeouts"] == 0
        service.close()
