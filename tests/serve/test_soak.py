"""A miniature in-process run of the soak harness.

The CI ``serve-smoke`` job runs the real thing (200 clients, all nine
registry targets); this keeps a fast, deterministic instance in the
tier-1 suite using fake experiments with a deliberate computation
delay, so the concurrency path (connect-barrier, coalescing, budget
and latency checks, report writing) is exercised on every test run.
"""

import json
import time

import pytest

from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec
from repro.serve import soak


@pytest.fixture()
def fake_targets(monkeypatch):
    """Two deterministic fake experiments, slow enough to coalesce on."""
    names = ("soak-fake-a", "soak-fake-b")
    for name in names:
        def run(*, quick=False, _name=name):
            time.sleep(0.05)  # long enough that the burst is in flight
            return f"SOAK {_name} quick={quick}"

        monkeypatch.setitem(registry._EXPERIMENTS, name,
                            ExperimentSpec(name, "soak fixture", run))
    return names


class TestMiniSoak:
    def test_soak_passes_and_writes_report(self, tmp_path, fake_targets):
        out = tmp_path / "SERVICE_REPORT.json"
        rc = soak.main(["--clients", "16", "--quick",
                        "--targets", *fake_targets,
                        "--store-dir", str(tmp_path / "store"),
                        "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.serve/1"
        assert doc["soak"]["passed"] is True
        checks = {c["name"]: c["ok"] for c in doc["soak"]["checks"]}
        assert checks == {
            "all_responses_200": True,
            "byte_identical_to_offline": True,
            "replays_within_budget": True,
            "coalescing_effective": True,
            "warm_p50_under_bound": True,
        }
        # 16 cold clients over 2 targets: 2 leaders, the rest coalesced
        # (the barrier makes this deterministic: computations take 50 ms,
        # all clients are connected and written within that window)
        assert doc["singleflight"]["leaders"] == 2
        assert doc["singleflight"]["coalesced"] == 14
        assert doc["requests"]["total"] == 32
        assert doc["requests"]["distinct"] == 2

    def test_soak_fails_on_unknown_target(self, tmp_path):
        with pytest.raises(SystemExit):
            soak.main(["--targets", "not-an-experiment",
                       "--out", str(tmp_path / "r.json")])

    def test_default_targets_are_registered_and_exclude_chaos_soak(self):
        for name in soak.DEFAULT_TARGETS:
            registry.experiment(name)  # raises on a stale name
        assert "soak" not in soak.DEFAULT_TARGETS


class TestOverloadedSoak:
    def test_admission_limited_soak_sheds_and_converges(self, tmp_path,
                                                        fake_targets):
        """With admission_limit=1 and a client burst over two targets,
        at least one client is shed with Retry-After and every client
        converges to a 200 within the retry deadline — the CI
        serve-smoke job runs the same contract at scale."""
        out = tmp_path / "SERVICE_REPORT.json"
        rc = soak.main(["--clients", "12", "--quick",
                        "--targets", *fake_targets,
                        "--admission-limit", "1",
                        "--store-dir", str(tmp_path / "store"),
                        "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["soak"]["passed"] is True
        checks = {c["name"]: c["ok"] for c in doc["soak"]["checks"]}
        assert checks["sheds_observed"] is True
        assert checks["sheds_carry_retry_after"] is True
        assert checks["retries_converged"] is True
        assert "coalescing_effective" not in checks  # replaced under limit
        assert doc["soak"]["admission_limit"] == 1
        assert doc["soak"]["client_sheds"] >= 1
        assert doc["requests"]["shed"] >= 1
