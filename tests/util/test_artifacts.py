"""Fault-injection suite for the corruption-safe artifact store.

Covers the store primitives (atomic write, checksum sidecars, quarantine,
npz/pickle validation) and all three migrated call sites: the electron
EOS table cache rebuilds transparently, a truncated checkpoint raises a
clear ``ArtifactError`` (checkpoints have no builder), and a corrupt
worklog pickle rebuilds.
"""

import logging
import pickle
import sys
import zipfile
from dataclasses import dataclass

import numpy as np
import pytest

from repro.util import artifacts
from repro.util.errors import ArtifactError, PhysicsError, ReproError


def _sample_arrays():
    return {"alpha": np.arange(12.0).reshape(3, 4), "beta": np.ones(5)}


def _save_sample(path, version=1):
    return artifacts.save_npz(path, _sample_arrays(), version=version)


# --- corruption injectors ----------------------------------------------------

def truncate_at(path, offset):
    data = path.read_bytes()
    path.write_bytes(data[:offset])


def zero_file(path):
    path.write_bytes(b"\x00" * path.stat().st_size)


# --- primitives --------------------------------------------------------------

class TestAtomicWrite:
    def test_writes_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "a.bin"
        with artifacts.atomic_write(target) as tmp:
            tmp.write_bytes(b"payload")
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failure_leaves_previous_content(self, tmp_path):
        target = tmp_path / "a.bin"
        target.write_bytes(b"old")
        with pytest.raises(RuntimeError):
            with artifacts.atomic_write(target) as tmp:
                tmp.write_bytes(b"half-writ")
                raise RuntimeError("simulated crash")
        assert target.read_bytes() == b"old"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "er" / "a.bin"
        with artifacts.atomic_write(target) as tmp:
            tmp.write_bytes(b"x")
        assert target.exists()


class TestChecksum:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "f.dat"
        p.write_bytes(b"hello")
        artifacts.write_checksum(p)
        assert artifacts.verify_checksum(p) is True

    def test_mismatch_detected(self, tmp_path):
        p = tmp_path / "f.dat"
        p.write_bytes(b"hello")
        artifacts.write_checksum(p)
        p.write_bytes(b"tampered")
        assert artifacts.verify_checksum(p) is False

    def test_missing_sidecar_is_none(self, tmp_path):
        p = tmp_path / "f.dat"
        p.write_bytes(b"hello")
        assert artifacts.verify_checksum(p) is None

    def test_garbage_sidecar_is_false(self, tmp_path):
        p = tmp_path / "f.dat"
        p.write_bytes(b"hello")
        artifacts.checksum_path(p).write_text("not a checksum")
        assert artifacts.verify_checksum(p) is False


class TestQuarantine:
    def test_moves_file_and_sidecar(self, tmp_path):
        p = _save_sample(tmp_path / "t.npz")
        q = artifacts.quarantine(p)
        assert not p.exists()
        assert q.name == "t.npz.corrupt"
        assert q.exists()
        assert not artifacts.checksum_path(p).exists()

    def test_overwrites_older_quarantine(self, tmp_path):
        p = tmp_path / "t.npz"
        for _ in range(2):
            _save_sample(p)
            q = artifacts.quarantine(p)
        assert q.exists()
        assert not p.exists()


# --- npz validation ----------------------------------------------------------

class TestNpzStore:
    def test_roundtrip_with_version(self, tmp_path):
        p = _save_sample(tmp_path / "t.npz", version=7)
        data = artifacts.load_npz(p, required_keys=("alpha", "beta"),
                                  version=7)
        np.testing.assert_array_equal(data["alpha"],
                                      _sample_arrays()["alpha"])
        # the version key is internal, not part of the payload
        assert artifacts.VERSION_KEY not in data

    def test_is_real_zipfile(self, tmp_path):
        p = _save_sample(tmp_path / "t.npz")
        assert zipfile.is_zipfile(p)

    @pytest.mark.parametrize("frac", [0.05, 0.3, 0.6, 0.95])
    def test_truncation_rejected(self, tmp_path, frac):
        p = _save_sample(tmp_path / "t.npz")
        truncate_at(p, int(p.stat().st_size * frac))
        with pytest.raises(ArtifactError):
            artifacts.load_npz(p, required_keys=("alpha",), version=1)

    def test_random_offset_truncations_rejected(self, tmp_path):
        rng = np.random.default_rng(20260805)
        p = tmp_path / "t.npz"
        size = _save_sample(p).stat().st_size
        for offset in rng.integers(1, size - 1, size=8):
            _save_sample(p)
            truncate_at(p, int(offset))
            with pytest.raises(ArtifactError):
                artifacts.load_npz(p, required_keys=("alpha",), version=1)

    def test_zeroed_file_rejected(self, tmp_path):
        p = _save_sample(tmp_path / "t.npz")
        zero_file(p)
        with pytest.raises(ArtifactError):
            artifacts.load_npz(p, version=1)

    def test_missing_key_rejected(self, tmp_path):
        p = artifacts.save_npz(tmp_path / "t.npz", {"alpha": np.ones(3)},
                               version=1)
        with pytest.raises(ArtifactError, match="beta"):
            artifacts.load_npz(p, required_keys=("alpha", "beta"), version=1)

    def test_version_flip_rejected(self, tmp_path):
        p = _save_sample(tmp_path / "t.npz", version=1)
        with pytest.raises(ArtifactError, match="version"):
            artifacts.load_npz(p, version=2)

    def test_missing_version_rejected_unless_allowed(self, tmp_path):
        p = tmp_path / "t.npz"
        with open(p, "wb") as f:
            np.savez_compressed(f, **_sample_arrays())
        with pytest.raises(ArtifactError, match="version"):
            artifacts.load_npz(p, version=1)
        data = artifacts.load_npz(p, version=1, allow_missing_version=True)
        assert "alpha" in data

    def test_checksum_tamper_rejected(self, tmp_path):
        # valid zip content but different from what the sidecar recorded
        p = _save_sample(tmp_path / "t.npz", version=1)
        sidecar = artifacts.checksum_path(p).read_text()
        artifacts.save_npz(p, {"alpha": np.zeros(2)}, version=1)
        artifacts.checksum_path(p).write_text(sidecar)
        with pytest.raises(ArtifactError, match="SHA-256"):
            artifacts.load_npz(p, version=1)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            artifacts.load_npz(tmp_path / "absent.npz")


# --- pickle validation -------------------------------------------------------

class _Ghost:
    """Pickled, then deleted from the module to simulate a stale cache
    whose class layout no longer exists (AttributeError on load)."""


class TestPickleStore:
    def test_roundtrip(self, tmp_path):
        p = artifacts.save_pickle(tmp_path / "w.pkl", {"x": [1, 2, 3]},
                                  version=4)
        assert artifacts.load_pickle(p, version=4) == {"x": [1, 2, 3]}

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "w.pkl"
        p.write_bytes(b"")
        with pytest.raises(ArtifactError):
            artifacts.load_pickle(p)

    def test_garbage_rejected(self, tmp_path):
        p = tmp_path / "w.pkl"
        p.write_bytes(b"\x00\xff\x13garbage not pickle")
        with pytest.raises(ArtifactError):
            artifacts.load_pickle(p)

    def test_truncation_rejected(self, tmp_path):
        p = artifacts.save_pickle(tmp_path / "w.pkl",
                                  {"big": list(range(1000))}, version=1)
        truncate_at(p, p.stat().st_size // 2)
        with pytest.raises(ArtifactError):
            artifacts.load_pickle(p, version=1)

    def test_stale_class_layout_rejected(self, tmp_path, monkeypatch):
        p = artifacts.save_pickle(tmp_path / "w.pkl", _Ghost(), version=1)
        monkeypatch.delattr(sys.modules[__name__], "_Ghost")
        with pytest.raises(ArtifactError):
            artifacts.load_pickle(p, version=1)

    def test_bare_pickle_without_envelope_rejected(self, tmp_path):
        # a legacy cache written by plain pickle.dump
        p = tmp_path / "w.pkl"
        with open(p, "wb") as f:
            pickle.dump({"x": 1}, f)
        with pytest.raises(ArtifactError, match="envelope"):
            artifacts.load_pickle(p)

    def test_version_flip_rejected(self, tmp_path):
        p = artifacts.save_pickle(tmp_path / "w.pkl", 42, version=4)
        with pytest.raises(ArtifactError, match="version"):
            artifacts.load_pickle(p, version=5)


# --- load_or_rebuild protocol ------------------------------------------------

class TestLoadOrRebuild:
    def _store(self, path, calls):
        def builder():
            calls.append("build")
            return {"alpha": np.full(4, len(calls), dtype=float)}

        return dict(
            loader=lambda p: artifacts.load_npz(p, required_keys=("alpha",),
                                                version=1),
            builder=builder,
            saver=lambda obj, p: artifacts.save_npz(p, obj, version=1),
            description="test artifact",
        )

    def test_builds_when_missing_then_hits_cache(self, tmp_path):
        p, calls = tmp_path / "t.npz", []
        store = self._store(p, calls)
        artifacts.load_or_rebuild(p, **store)
        artifacts.load_or_rebuild(p, **store)
        assert calls == ["build"]

    @pytest.mark.parametrize("corrupt", [
        lambda p: truncate_at(p, 10),
        zero_file,
        lambda p: p.write_bytes(b"PK\x03\x04 but then nonsense"),
    ])
    def test_corruption_quarantines_rebuilds_recaches(self, tmp_path, caplog,
                                                      corrupt):
        p, calls = tmp_path / "t.npz", []
        store = self._store(p, calls)
        artifacts.load_or_rebuild(p, **store)
        corrupt(p)
        with caplog.at_level(logging.WARNING, logger="repro.util.artifacts"):
            out = artifacts.load_or_rebuild(p, **store)
        assert calls == ["build", "build"]
        assert any("quarantined" in r.message for r in caplog.records)
        assert p.with_name("t.npz.corrupt").exists()
        np.testing.assert_array_equal(out["alpha"], np.full(4, 2.0))
        # the rebuilt cache is valid: a third load does not rebuild
        artifacts.load_or_rebuild(p, **store)
        assert calls == ["build", "build"]

    def test_no_builder_raises(self, tmp_path):
        p = _save_sample(tmp_path / "t.npz")
        truncate_at(p, 10)
        with pytest.raises(ArtifactError):
            artifacts.load_or_rebuild(
                p, loader=lambda q: artifacts.load_npz(q, version=1),
                description="unrebuildable")
        # without a builder the file is NOT quarantined — post-mortem intact
        assert p.exists()

    def test_unwritable_cache_is_nonfatal(self, tmp_path, caplog):
        p, calls = tmp_path / "t.npz", []
        store = self._store(p, calls)

        def failing_saver(obj, path):
            raise OSError("read-only cache")

        store["saver"] = failing_saver
        with caplog.at_level(logging.WARNING, logger="repro.util.artifacts"):
            out = artifacts.load_or_rebuild(p, **store)
        assert calls == ["build"]
        np.testing.assert_array_equal(out["alpha"], np.full(4, 1.0))
        assert any("could not re-cache" in r.message for r in caplog.records)


# --- site 1: the electron EOS table ------------------------------------------

TINY = dict(n_rhoye=8, n_temp=6)


class TestElectronTableSite:
    def test_corrupt_cache_rebuilds_transparently(self, tmp_path, caplog):
        from repro.physics.eos.table import ElectronTable

        p = tmp_path / "electron_table.npz"
        ElectronTable.build(**TINY).save(p)
        truncate_at(p, 100)
        with caplog.at_level(logging.WARNING):
            table = ElectronTable.load(p, **TINY)
        out = table.evaluate(1.0e6, 1.0e8)
        assert np.isfinite(out["pres"]).all()
        assert p.with_name(p.name + ".corrupt").exists()
        assert zipfile.is_zipfile(p)  # rebuilt and re-cached

    def test_second_load_hits_fresh_cache(self, tmp_path, monkeypatch):
        from repro.physics.eos import table as table_mod

        p = tmp_path / "electron_table.npz"
        table_mod.ElectronTable.build(**TINY).save(p)
        zero_file(p)
        builds = []
        real_build = table_mod.ElectronTable.build.__func__

        @classmethod
        def counting_build(cls, **kw):
            builds.append(1)
            return real_build(cls, **kw)

        monkeypatch.setattr(table_mod.ElectronTable, "build", counting_build)
        table_mod.ElectronTable.load(p, **TINY)
        table_mod.ElectronTable.load(p, **TINY)
        assert len(builds) == 1

    def test_dropped_key_rebuilds(self, tmp_path):
        from repro.physics.eos import table as table_mod

        p = tmp_path / "electron_table.npz"
        table_mod.ElectronTable.build(**TINY).save(p)
        data = artifacts.load_npz(p, version=table_mod._TABLE_VERSION)
        del data["eta"]
        artifacts.save_npz(p, data, version=table_mod._TABLE_VERSION)
        table = table_mod.ElectronTable.load(p, **TINY)
        assert table.eta.shape == (TINY["n_rhoye"], TINY["n_temp"])

    def test_stale_version_rebuilds(self, tmp_path):
        from repro.physics.eos import table as table_mod

        p = tmp_path / "electron_table.npz"
        t = table_mod.ElectronTable.build(**TINY)
        artifacts.save_npz(
            p, {k: getattr(t, k) for k in table_mod._TABLE_KEYS},
            version=table_mod._TABLE_VERSION + 1)
        table = table_mod.ElectronTable.load(p, **TINY)
        assert np.isfinite(table.evaluate(1e6, 1e8)["pres"]).all()

    def test_missing_without_builder_raises_physics_error(self, tmp_path):
        from repro.physics.eos.table import ElectronTable

        with pytest.raises(PhysicsError):
            ElectronTable.load(tmp_path / "nope.npz", build_if_missing=False)

    def test_shipped_table_is_valid(self):
        from repro.physics.eos import table as table_mod

        shipped = (table_mod.Path(table_mod.__file__).resolve().parent
                   / "data" / "electron_table.npz")
        assert zipfile.is_zipfile(shipped)
        assert artifacts.verify_checksum(shipped) is True
        artifacts.load_npz(shipped, required_keys=table_mod._TABLE_KEYS,
                           version=table_mod._TABLE_VERSION)


# --- site 2: checkpoints (no builder -> clear error) -------------------------

def _small_grid():
    from repro.mesh.grid import Grid, MeshSpec
    from repro.mesh.tree import AMRTree

    tree = AMRTree(ndim=1, nblockx=2, max_level=1, domain=((0.0, 1.0),))
    spec = MeshSpec(ndim=1, nxb=8, nyb=1, nzb=1, nguard=2, maxblocks=16)
    grid = Grid(tree, spec)
    grid.unk[:] = 1.0
    return grid


class TestCheckpointSite:
    def test_roundtrip_still_works(self, tmp_path):
        from repro.driver.io import read_checkpoint, write_checkpoint

        p = write_checkpoint(_small_grid(), tmp_path / "chk.npz", time=2.5,
                             n_step=7)
        grid2, t, n = read_checkpoint(p)
        assert (t, n) == (2.5, 7)
        assert artifacts.verify_checksum(p) is True

    @pytest.mark.parametrize("corrupt", [lambda p: truncate_at(p, 64),
                                         zero_file])
    def test_corrupt_checkpoint_raises_clear_error(self, tmp_path, corrupt):
        from repro.driver.io import read_checkpoint, write_checkpoint

        p = write_checkpoint(_small_grid(), tmp_path / "chk.npz")
        corrupt(p)
        with pytest.raises(ArtifactError, match="checkpoint"):
            read_checkpoint(p)
        assert issubclass(ArtifactError, ReproError)

    def test_missing_checkpoint_raises_clear_error(self, tmp_path):
        from repro.driver.io import read_checkpoint

        with pytest.raises(ArtifactError, match="checkpoint"):
            read_checkpoint(tmp_path / "never_written.npz")

    def test_legacy_checkpoint_without_version_reads(self, tmp_path):
        from repro.driver.io import read_checkpoint, write_checkpoint

        p = write_checkpoint(_small_grid(), tmp_path / "chk.npz", time=1.0)
        # strip the embedded version field, as a pre-store checkpoint
        data = artifacts.load_npz(p)
        legacy = tmp_path / "legacy.npz"
        with open(legacy, "wb") as f:
            np.savez_compressed(f, **data)
        _, t, _ = read_checkpoint(legacy)
        assert t == 1.0


# --- site 3: the worklog pickle cache ----------------------------------------

@dataclass
class _DigestableLog:
    """Stand-in for a WorkLog in cache-site tests: the worklog cache now
    stores a ``{"log", "digest"}`` envelope and verifies the digest on
    load, so payloads must be digestable (and picklable)."""

    n: int

    def digest(self) -> str:
        return f"probe-digest-{self.n}"


class TestWorklogCacheSite:
    def _cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        from repro.experiments import workloads
        return workloads

    def test_build_then_cache_hit(self, tmp_path, monkeypatch):
        workloads = self._cached(tmp_path, monkeypatch)
        calls = []

        def builder():
            calls.append(1)
            return _DigestableLog(5)

        assert workloads._cached("unit_probe", builder) == _DigestableLog(5)
        assert workloads._cached("unit_probe", builder) == _DigestableLog(5)
        assert len(calls) == 1

    @pytest.mark.parametrize("corruptor", [
        lambda p: p.write_bytes(b""),                      # interrupted write
        lambda p: truncate_at(p, 4),                       # partial flush
        lambda p: p.write_bytes(b"\x00" * 64),             # zeroed
        lambda p: p.write_bytes(pickle.dumps(["no envelope"])),  # legacy
    ])
    def test_corrupt_cache_rebuilds(self, tmp_path, monkeypatch, corruptor):
        workloads = self._cached(tmp_path, monkeypatch)
        calls = []

        def builder():
            calls.append(1)
            return _DigestableLog(len(calls))

        workloads._cached("unit_probe", builder)
        path = workloads._cache_dir() / "unit_probe.pkl"
        corruptor(path)
        assert workloads._cached("unit_probe", builder) == _DigestableLog(2)
        assert path.with_name(path.name + ".corrupt").exists()
        # rebuilt cache is clean: no third build
        assert workloads._cached("unit_probe", builder) == _DigestableLog(2)
        assert len(calls) == 2

    def test_stale_version_rebuilds(self, tmp_path, monkeypatch):
        workloads = self._cached(tmp_path, monkeypatch)
        path = workloads._cache_dir() / "unit_probe.pkl"
        old = _DigestableLog(0)
        artifacts.save_pickle(path, {"log": old, "digest": old.digest()},
                              version=workloads._CACHE_VERSION - 1)
        assert (workloads._cached("unit_probe", lambda: _DigestableLog(1))
                == _DigestableLog(1))

    def test_digest_mismatch_rebuilds(self, tmp_path, monkeypatch):
        workloads = self._cached(tmp_path, monkeypatch)
        path = workloads._cache_dir() / "unit_probe.pkl"
        # right version, valid pickle, wrong digest: content no longer
        # matches what it claims to be -> quarantine and rebuild
        artifacts.save_pickle(path,
                              {"log": _DigestableLog(0), "digest": "stale"},
                              version=workloads._CACHE_VERSION)
        assert (workloads._cached("unit_probe", lambda: _DigestableLog(1))
                == _DigestableLog(1))
        assert path.with_name(path.name + ".corrupt").exists()
