"""Sanity tests for physical constants and the error hierarchy."""

import pytest

from repro.util import constants as c
from repro.util.errors import (
    AllocationError,
    ConfigurationError,
    ConvergenceError,
    KernelError,
    MeshError,
    PhysicsError,
    ReproError,
)


class TestConstants:
    def test_memory_sizes(self):
        assert c.KiB == 1024
        assert c.MiB == 1024**2
        assert c.GiB == 1024**3

    def test_radiation_constant_consistent(self):
        """a = 8 pi^5 k^4 / (15 h^3 c^3) — derived, so cross-check it."""
        import math

        a = (8 * math.pi**5 * c.BOLTZMANN**4
             / (15 * c.H_PLANCK**3 * c.C_LIGHT**3))
        assert c.RADIATION_A == pytest.approx(a, rel=1e-5)

    def test_electron_rest_energy(self):
        # 511 keV in erg
        assert c.ME_C2 == pytest.approx(8.187e-7, rel=1e-3)

    def test_gas_constant(self):
        assert c.GAS_CONSTANT == pytest.approx(8.314e7, rel=1e-3)

    def test_nuclear_energetics_scale(self):
        """C/O -> NSE releases ~1e18 erg/g in total (the canonical value)."""
        total = c.Q_CARBON_BURN + c.Q_NSE_RELAX
        assert 5e17 < total < 2e18


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(AllocationError, KernelError)
        assert issubclass(KernelError, ReproError)
        assert issubclass(ConvergenceError, PhysicsError)
        assert issubclass(MeshError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise AllocationError("boom")
