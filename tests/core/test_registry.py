"""Tests for the unit/parameter registries and the generic scheduler."""

import pytest

from repro.core import (
    COARSE,
    ParameterSpec,
    UnitSpec,
    WorkKind,
    load_all,
    parameter_registry,
    unit_registry,
)
from repro.core.registry import ParameterRegistry, UnitRegistry
from repro.driver.config import DEFAULTS
from repro.driver.simulation import Simulation
from repro.hw import calibration as cal
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.mesh.unit import RefinementPolicy
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.util.errors import ConfigurationError

#: the seed's DEFAULTS dict, verbatim — the registry must preserve every
#: name and value (papi_style is the one intentional addition)
LEGACY_DEFAULTS = {
    "basenm": "repro_", "restart": False, "nend": 100, "tmax": 1.0e99,
    "dtinit": 1.0e-10, "dtmax": 1.0e99, "cfl": 0.4, "lrefine_max": 4,
    "nrefs": 4, "refine_var_1": "dens", "refine_cutoff_1": 0.8,
    "derefine_cutoff_1": 0.2, "smlrho": 1.0e-12, "smallp": 1.0e-12,
    "eosModeInit": "dens_temp", "perf_engine": "fast",
    "xl_boundary_type": "outflow", "xr_boundary_type": "outflow",
    "yl_boundary_type": "outflow", "yr_boundary_type": "outflow",
    "zl_boundary_type": "outflow", "zr_boundary_type": "outflow",
}

#: the seed's perfmodel tables, verbatim — now derived from declarations
LEGACY_FINE_KINDS = {"eos", "eos_gamma", "hydro_sweep", "flame"}
LEGACY_WORK_MODELS = {
    "hydro_sweep": (cal.HYDRO_SWEEP, "hydro"),
    "eos": (cal.EOS_CALL, "eos"),
    "eos_gamma": (cal.EOS_GAMMA_CALL, "eos"),
    "guardcell": (cal.GUARDCELL, "mesh"),
    "flame": (cal.FLAME_STEP, "flame"),
    "gravity": (cal.GRAVITY_STEP, "gravity"),
}


class TestRegistryContents:
    def test_all_units_registered(self):
        load_all()
        names = {spec.name for spec in unit_registry.units()}
        assert {"driver", "hydro", "eos", "eos_gamma", "flame", "gravity",
                "mesh", "papi", "perfmodel"} <= names

    def test_units_in_phase_order(self):
        phases = [spec.phase for spec in unit_registry.units()]
        assert phases == sorted(phases)

    def test_defaults_preserve_legacy_values(self):
        defaults = parameter_registry.defaults()
        for name, value in LEGACY_DEFAULTS.items():
            assert defaults[name] == value, name
            assert type(defaults[name]) is type(value), name

    def test_defaults_view_is_a_mapping(self):
        assert DEFAULTS["cfl"] == 0.4
        assert "nend" in set(DEFAULTS)
        assert len(DEFAULTS) == len(parameter_registry.defaults())
        assert dict(DEFAULTS) == parameter_registry.defaults()

    def test_work_models_match_legacy_table(self):
        assert unit_registry.work_models() == LEGACY_WORK_MODELS

    def test_fine_kinds_match_legacy_table(self):
        assert unit_registry.fine_work_kinds() == LEGACY_FINE_KINDS

    def test_unknown_parameter_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'cfl'"):
            parameter_registry.spec("cfi")

    def test_unknown_unit_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'hydro'"):
            unit_registry.unit("hydr")

    def test_parameter_owners(self):
        assert parameter_registry.owner("cfl") == "hydro"
        assert parameter_registry.owner("nrefs") == "mesh"
        assert parameter_registry.owner("perf_engine") == "perfmodel"


class TestRegistrationErrors:
    def test_duplicate_unit_rejected(self):
        reg = UnitRegistry(ParameterRegistry())
        spec = UnitSpec(name="u", description="x")
        reg.register(spec)
        with pytest.raises(ConfigurationError, match="registered twice"):
            reg.register(spec)

    def test_duplicate_work_kind_rejected(self):
        reg = UnitRegistry(ParameterRegistry())
        kind = WorkKind("w", cal.GUARDCELL, "mesh", COARSE)
        reg.register(UnitSpec(name="a", description="x", work_kinds=(kind,)))
        with pytest.raises(ConfigurationError, match="declared by both"):
            reg.register(UnitSpec(name="b", description="x",
                                  work_kinds=(kind,)))

    def test_cross_unit_parameter_collision_rejected(self):
        params = ParameterRegistry()
        params.register("a", (ParameterSpec("knob", 1),))
        with pytest.raises(ConfigurationError, match="declared by both"):
            params.register("b", (ParameterSpec("knob", 2),))

    def test_parameter_choices_enforced(self):
        spec = ParameterSpec("mode", "x", choices=("x", "y"))
        spec.validate("y")
        with pytest.raises(ConfigurationError, match="expected one of"):
            spec.validate("z")

    def test_parameter_validator_enforced(self):
        spec = ParameterSpec("frac", 0.5, validator=lambda v: 0 < v <= 1)
        spec.validate(1.0)
        with pytest.raises(ConfigurationError):
            spec.validate(2.0)


def sod_sim(*extra_units, **kw):
    tree = AMRTree(ndim=1, nblockx=2, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    return Simulation(grid, HydroUnit(eos, cfl=0.6), *extra_units, **kw)


class TestScheduler:
    def test_unregistered_instance_rejected(self):
        tree = AMRTree(ndim=1, nblockx=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
        grid = Grid(tree, spec)
        with pytest.raises(ConfigurationError, match="not a registered unit"):
            Simulation(grid, object())

    def test_duplicate_instance_rejected(self):
        tree = AMRTree(ndim=1, nblockx=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        SodProblem().initialize(grid, eos)
        with pytest.raises(ConfigurationError, match="two instances"):
            Simulation(grid, HydroUnit(eos), HydroUnit(eos), nrefs=0)

    def test_scheduled_in_phase_order(self):
        sim = sod_sim(nrefs=0)
        phases = [spec.phase for spec, _ in sim.scheduled_units()]
        assert phases == sorted(phases)
        assert sim.unit_names[0] == "hydro"  # phase 10 < mesh's 40

    def test_refinement_policy_synthesised(self):
        sim = sod_sim(nrefs=3, refine_cutoff=0.9)
        assert isinstance(sim.refinement, RefinementPolicy)
        assert sim.nrefs == 3
        assert sim.refine_cutoff == 0.9

    def test_explicit_refinement_policy_wins(self):
        policy = RefinementPolicy(nrefs=7)
        sim = sod_sim(policy)
        assert sim.refinement is policy
        assert sim.nrefs == 7

    def test_unit_accessors(self):
        sim = sod_sim(nrefs=0)
        assert sim.hydro is sim.unit("hydro")
        assert sim.flame is None
        assert sim.gravity is None

    def test_bc_comes_from_declaring_unit(self):
        sim = sod_sim(nrefs=0)
        assert sim.bc is sim.hydro.bc

    def test_from_params(self):
        from repro.driver.config import RuntimeParameters
        params = RuntimeParameters.from_par(
            "nrefs = 2\nrefine_cutoff_1 = 0.7\ndtmax = 1.0d-3")
        tree = AMRTree(ndim=1, nblockx=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        SodProblem().initialize(grid, eos)
        sim = Simulation.from_params(grid, HydroUnit(eos), params=params)
        assert sim.nrefs == 2
        assert sim.refine_cutoff == 0.7
        assert sim.dtmax == 1.0e-3


class TestWorkloadRegistry:
    def test_paper_workloads_gated(self):
        gated = {w.name for w in unit_registry.gated_workloads()}
        assert gated == {"eos", "hydro"}

    def test_sod_workload_registered_ungated(self):
        spec = unit_registry.workload("sod")
        assert not spec.gate
        assert spec.region_kinds == ("hydro_sweep", "guardcell")

    def test_paper_anchors_declared(self):
        assert unit_registry.workload("eos").paper_steps == 50
        assert unit_registry.workload("hydro").paper_steps == 200
        assert unit_registry.workload("eos").paper_table == "table1"

    def test_unknown_workload_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'eos'"):
            unit_registry.workload("eoss")
