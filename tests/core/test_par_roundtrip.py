"""Property test: ``from_par(to_par(p)) == p`` across all registered types.

The flash.par grammar spells booleans ``.true.``/``.false.``, reals with
Fortran ``d`` exponents, and strings quoted; the serialiser must invert
the parser for every registered parameter, whatever value it holds.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import load_all, parameter_registry
from repro.driver.config import RuntimeParameters

load_all()

#: characters the flash.par grammar can carry inside a quoted string
#: (no quotes/comment markers/newlines; no surrounding whitespace)
_STR_ALPHABET = string.ascii_letters + string.digits + "_-./+:"


def _value_strategy(spec):
    """A strategy for values the spec accepts (typed, in-choices, and
    passing the spec's validator)."""
    if spec.choices:
        base = st.sampled_from(spec.choices)
    elif spec.type is bool:
        base = st.booleans()
    elif spec.type is int:
        base = st.integers(min_value=-10**12, max_value=10**12)
    elif spec.type is float:
        base = st.floats(allow_nan=False, allow_infinity=False)
    else:
        base = st.text(alphabet=_STR_ALPHABET, max_size=24)
    if spec.validator is None:
        return base
    # bias validated numerics toward the ranges the resilience knobs
    # accept (positive, inside (0, 1)) so the filter stays cheap
    if spec.type is float:
        base = st.one_of(base, st.floats(min_value=0.0, max_value=1.0,
                                         exclude_min=True, exclude_max=True,
                                         allow_nan=False))
    elif spec.type is int:
        base = st.one_of(base, st.integers(min_value=1, max_value=10**6))
    return base.filter(lambda v: spec.validator(v) is not False)


@st.composite
def _parameter_sets(draw):
    """A RuntimeParameters with every registered value redrawn."""
    params = RuntimeParameters()
    for name in parameter_registry.names():
        spec = parameter_registry.spec(name)
        params.set(name, draw(_value_strategy(spec)))
    return params


class TestParRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(_parameter_sets())
    def test_round_trips_every_registered_parameter(self, params):
        assert RuntimeParameters.from_par(params.to_par()) == params

    def test_fortran_literal_forms(self):
        # the grammar the paper's flash.par files actually use
        p = RuntimeParameters.from_par(
            "tmax = 1.0d99\nrestart = .true.\nbasenm = \"run_\"\nnend = 7")
        text = p.to_par()
        q = RuntimeParameters.from_par(text)
        assert q.get("tmax") == 1.0e99
        assert q.get("restart") is True
        assert q.get("basenm") == "run_"
        assert q.get("nend") == 7

    @pytest.mark.parametrize("value", [0.0, -0.0, 1.0e99, 1.0e-10, -3.25,
                                       1.0000000000000002])
    def test_float_round_trip(self, value):
        p = RuntimeParameters()
        p.set("tmax", value)
        assert RuntimeParameters.from_par(p.to_par()).get("tmax") == value

    def test_to_par_groups_by_unit(self):
        text = RuntimeParameters().to_par()
        assert "# hydro" in text
        assert "# perfmodel" in text
        assert "cfl = 0.4" in text
