"""Tests for the performance model: work records, traces, pipeline."""

import numpy as np
import pytest

from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.perfmodel.pipeline import PerformancePipeline
from repro.perfmodel.workrecord import UnitInvocation, WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.toolchain.compiler import ARM, FUJITSU, GNU


@pytest.fixture(scope="module")
def small_log():
    """A tiny 2-d workload (gamma EOS, no flame/gravity)."""
    tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    sim = Simulation(grid, HydroUnit(eos, cfl=0.5), nrefs=0)
    log = WorkLog.attach(sim, helmholtz_eos=False)
    sim.evolve(nend=4)
    return log


class TestWorkLog:
    def test_steps_recorded(self, small_log):
        assert small_log.n_steps == 4

    def test_invocation_structure(self, small_log):
        rec = small_log.steps[0]
        units = [inv.unit for inv in rec.invocations]
        # 2-d: guardcell + sweep + eos per axis
        assert units == ["guardcell", "hydro_sweep", "eos_gamma"] * 2

    def test_slots_in_morton_order(self, small_log):
        rec = small_log.steps[0]
        assert len(rec.slots) == 4
        assert len(set(rec.slots)) == 4

    def test_zone_totals(self, small_log):
        per_step = 4 * 64  # blocks x zones
        assert small_log.total_zone_updates("hydro_sweep") == 4 * 2 * per_step

    def test_representative_step(self, small_log):
        rec = small_log.representative_step()
        assert rec in small_log.steps


class TestPipeline:
    def test_runs_and_reports(self, small_log):
        report = PerformancePipeline(small_log, GNU).run()
        assert set(report.units) == {"guardcell", "hydro_sweep", "eos_gamma"}
        assert report.flash_timer_s > 0
        assert not report.uses_huge_pages  # GNU on the stock node

    def test_fujitsu_uses_huge_pages(self, small_log):
        report = PerformancePipeline(small_log, FUJITSU).run()
        assert report.uses_huge_pages
        assert report.meminfo["HugePages_Total"] > 0

    def test_knolargepage_disables(self, small_log):
        report = PerformancePipeline(small_log, FUJITSU,
                                     flags=("-Knolargepage",)).run()
        assert not report.uses_huge_pages

    def test_huge_pages_cut_dtlb_misses(self, small_log):
        with_hp = PerformancePipeline(small_log, FUJITSU).run()
        without = PerformancePipeline(small_log, FUJITSU,
                                      flags=("-Knolargepage",)).run()
        m_with = with_hp.region(("hydro_sweep", "guardcell"))
        m_without = without.region(("hydro_sweep", "guardcell"))
        assert m_with["dtlb_misses_per_s"] < m_without["dtlb_misses_per_s"]

    def test_replication_scales_work_linearly(self, small_log):
        r1 = PerformancePipeline(small_log, GNU, replication=1).run()
        r4 = PerformancePipeline(small_log, GNU, replication=4).run()
        t1 = r1.region("hydro_sweep")["hardware_cycles"]
        t4 = r4.region("hydro_sweep")["hardware_cycles"]
        assert t4 == pytest.approx(4 * t1, rel=0.15)

    def test_replication_preserves_rates(self, small_log):
        r1 = PerformancePipeline(small_log, GNU, replication=1).run()
        r4 = PerformancePipeline(small_log, GNU, replication=4).run()
        m1 = r1.region("hydro_sweep")
        m4 = r4.region("hydro_sweep")
        assert m4["mem_gbytes_per_s"] == pytest.approx(
            m1["mem_gbytes_per_s"], rel=0.15)

    def test_arm_slower_than_gnu(self, small_log):
        t_gnu = PerformancePipeline(small_log, GNU).run().flash_timer_s
        t_arm = PerformancePipeline(small_log, ARM).run().flash_timer_s
        assert 1.8 < t_arm / t_gnu < 3.0

    def test_counterbank_mirror(self, small_log):
        from repro.papi.events import Event

        report = PerformancePipeline(small_log, GNU).run()
        bank = report.as_counterbank()
        assert bank.time_s == pytest.approx(sum(report.seconds.values()))
        assert bank.totals[Event.TLB_DM] == pytest.approx(
            sum(u.tlb.l1_misses for u in report.units.values()))

    def test_region_combines_units(self, small_log):
        report = PerformancePipeline(small_log, GNU).run()
        a = report.region("hydro_sweep")["hardware_cycles"]
        b = report.region("guardcell")["hardware_cycles"]
        ab = report.region(("hydro_sweep", "guardcell"))["hardware_cycles"]
        assert ab == pytest.approx(a + b, rel=1e-12)

    def test_deterministic(self, small_log):
        m1 = PerformancePipeline(small_log, GNU, seed=7).run().region("hydro_sweep")
        m2 = PerformancePipeline(small_log, GNU, seed=7).run().region("hydro_sweep")
        assert m1 == m2


class TestEosWorkload:
    """Helmholtz-EOS specific behaviour needs eos invocations with
    Newton iteration counts."""

    @pytest.fixture(scope="class")
    def eos_log(self):
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=32)
        log = WorkLog(spec=spec, nvar=12)
        from repro.perfmodel.workrecord import StepRecord

        zones = 4 * 64
        inv = (
            UnitInvocation(unit="guardcell", zones=zones, axis=0),
            UnitInvocation(unit="hydro_sweep", zones=zones, axis=0),
            UnitInvocation(unit="eos", zones=zones,
                           newton_iterations=6 * zones),
        )
        for n in range(3):
            log.steps.append(StepRecord(n=n + 1, dt=1e-3,
                                        slots=(0, 1, 2, 3),
                                        levels=(0, 0, 0, 0),
                                        invocations=inv))
        return log

    def test_eos_tlb_rate_dominates_without_hp(self, eos_log):
        report = PerformancePipeline(eos_log, FUJITSU,
                                     flags=("-Knolargepage",)).run()
        eos_rate = report.region("eos")["dtlb_misses_per_s"]
        hydro_rate = report.region("hydro_sweep")["dtlb_misses_per_s"]
        assert eos_rate > 3 * hydro_rate

    def test_eos_dtlb_collapse_with_hp(self, eos_log):
        with_hp = PerformancePipeline(eos_log, FUJITSU).run().region("eos")
        without = PerformancePipeline(eos_log, FUJITSU,
                                      flags=("-Knolargepage",)).run().region("eos")
        ratio = with_hp["dtlb_misses_per_s"] / without["dtlb_misses_per_s"]
        assert ratio < 0.15  # the paper's 0.047, loosely bounded

    def test_time_barely_improves(self, eos_log):
        """The paper's punchline: misses collapse, time barely moves."""
        with_hp = PerformancePipeline(eos_log, FUJITSU).run().region("eos")
        without = PerformancePipeline(eos_log, FUJITSU,
                                      flags=("-Knolargepage",)).run().region("eos")
        ratio = with_hp["time_s"] / without["time_s"]
        assert 0.85 < ratio < 1.0
