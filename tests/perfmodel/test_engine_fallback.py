"""Graceful degradation of the perf pipeline: a failing fast engine
falls back to the scalar oracle with a counted, attributed downgrade."""

import pytest

from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.perfmodel.pipeline import PerformancePipeline
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.toolchain.compiler import FUJITSU
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def tiny_log():
    tree = AMRTree(ndim=1, nblockx=2, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=8, nyb=1, nzb=1, nguard=4, maxblocks=16)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    sim = Simulation(grid, HydroUnit(eos, cfl=0.5), nrefs=0)
    log = WorkLog.attach(sim, helmholtz_eos=False)
    sim.evolve(nend=2)
    return log


def _fail_fast(engine):
    if engine == "fast":
        raise RuntimeError("injected fast-path divergence")


class TestEngineFallback:
    def test_fast_failure_degrades_to_scalar(self, tiny_log):
        pipe = PerformancePipeline(tiny_log, FUJITSU, engine="fast",
                                   fault_injector=_fail_fast)
        report = pipe.run()
        assert report.engine == "scalar"
        assert report.degradations["perf_engine_scalar_fallback"] == 1
        detail = pipe.kernel.degradations.details[
            "perf_engine_scalar_fallback"]
        assert "'fast' engine failed" in detail
        assert "injected fast-path divergence" in detail

    def test_degraded_report_matches_native_scalar(self, tiny_log):
        """The fallback result is the scalar result — same counters."""
        degraded = PerformancePipeline(tiny_log, FUJITSU, engine="fast",
                                       seed=3,
                                       fault_injector=_fail_fast).run()
        native = PerformancePipeline(tiny_log, FUJITSU, engine="scalar",
                                     seed=3).run()
        assert degraded.seconds == native.seconds
        assert degraded.flash_timer_s == native.flash_timer_s
        for name, totals in native.units.items():
            assert degraded.units[name] == totals

    def test_scalar_failure_propagates(self, tiny_log):
        def fail_always(engine):
            raise RuntimeError("broken everywhere")

        pipe = PerformancePipeline(tiny_log, FUJITSU, engine="scalar",
                                   fault_injector=fail_always)
        with pytest.raises(RuntimeError, match="broken everywhere"):
            pipe.run()

    def test_fallback_failure_also_propagates(self, tiny_log):
        """If the scalar rerun fails too, nothing swallows it."""
        def fail_always(engine):
            raise RuntimeError(f"{engine} down")

        pipe = PerformancePipeline(tiny_log, FUJITSU, engine="fast",
                                   fault_injector=fail_always)
        with pytest.raises(RuntimeError, match="scalar down"):
            pipe.run()

    def test_configuration_errors_never_degrade(self, tiny_log):
        def misconfigured(engine):
            raise ConfigurationError("bad flags")

        pipe = PerformancePipeline(tiny_log, FUJITSU, engine="fast",
                                   fault_injector=misconfigured)
        with pytest.raises(ConfigurationError):
            pipe.run()
        assert pipe.kernel.degradations.counts == {}

    def test_clean_fast_run_records_its_engine(self, tiny_log):
        report = PerformancePipeline(tiny_log, FUJITSU, engine="fast").run()
        assert report.engine == "fast"
        assert report.degradations == {}

    def test_failed_fast_attempt_releases_its_process(self, tiny_log):
        """The torn-down first attempt must leave the kernel clean so the
        scalar rerun sees the same machine (pool, meminfo)."""
        pipe = PerformancePipeline(tiny_log, FUJITSU, engine="fast",
                                   fault_injector=_fail_fast)
        report = pipe.run()
        assert report.engine == "scalar"
        # exactly one process's worth of pool pages is still allocated
        # at report time... none after the run's own teardown
        assert pipe.kernel.pool().allocated == 0
