"""The fast replay engine against the scalar oracle.

Three layers of the equivalence contract:

* the batch TLB kernels (``lru_miss_mask``, ``run_segments``,
  ``run_steady_segments``) against the per-access ``TLBSimulator`` on
  randomized traces, across geometries and with every bucketing
  strategy forced;
* ``FastTraceBuilder`` against ``TraceBuilder``, element for element,
  for every unit kind;
* whole-pipeline replays under both engines, asserting bit-identical
  counter totals.
"""

import numpy as np
import pytest

import repro.hw.tlb as tlb_mod
from repro.driver.config import RuntimeParameters
from repro.driver.simulation import Simulation
from repro.hw.a64fx import A64FX, TLBGeometry, TLBLevelSpec
from repro.hw.tlb import (TLBSimulator, lru_miss_mask, run_segments,
                          run_steady_segments)
from repro.hw.trace import PageTrace
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.perfmodel.fastpath import FastTraceBuilder
from repro.perfmodel.patterns import TraceBuilder
from repro.perfmodel.pipeline import PerformancePipeline, resolve_engine
from repro.perfmodel.workrecord import UnitInvocation, WorkLog
from repro.physics.eos import GammaLawEOS
from repro.util.errors import ConfigurationError
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.toolchain.compiler import FUJITSU, GNU

BASE = 65536
HUGE = 2 * 1024 * 1024

#: a spread of shapes: A64FX-like, low-assoc, direct-mapped L1,
#: fully-associative L2
GEOMETRIES = [
    TLBGeometry(l1=TLBLevelSpec(16, 16, 8.0),
                l2=TLBLevelSpec(1024, 4, 30.0), walk_cycles=300.0),
    TLBGeometry(l1=TLBLevelSpec(64, 4, 8.0),
                l2=TLBLevelSpec(1024, 8, 30.0), walk_cycles=300.0),
    TLBGeometry(l1=TLBLevelSpec(8, 1, 8.0),
                l2=TLBLevelSpec(64, 64, 30.0), walk_cycles=300.0),
    TLBGeometry(l1=TLBLevelSpec(32, 2, 8.0),
                l2=TLBLevelSpec(256, 4, 30.0), walk_cycles=300.0),
]


def random_trace(rng, n, n_pages, mixed_sizes):
    pages = rng.integers(0, n_pages, size=n)
    if rng.random() < 0.5:  # bias toward a hot working set sometimes
        hot = rng.integers(0, max(n_pages // 10, 1), size=n)
        pages = np.where(rng.random(n) < 0.7, hot, pages)
    pool = [BASE, HUGE] if mixed_sizes else [BASE]
    sizes = rng.choice(pool, size=n)
    return PageTrace.from_accesses(pages.astype(np.int64) * HUGE,
                                   sizes.astype(np.int64))


def stats_tuple(s):
    return (s.accesses, s.l1_misses, s.l2_misses)


class TestBatchKernelsVsOracle:
    @pytest.mark.parametrize("trial", range(24))
    def test_run_segments_matches_scalar(self, trial):
        rng = np.random.default_rng(100 + trial)
        geo = GEOMETRIES[trial % len(GEOMETRIES)]
        n_streams = int(rng.integers(1, 4))
        groups = [[random_trace(rng, int(rng.integers(1, 1200)),
                                int(rng.integers(2, 400)), trial % 3 != 0)
                   for _ in range(int(rng.integers(1, 4)))]
                  for _ in range(n_streams)]
        traces, streams = [], []
        for i, group in enumerate(groups):
            traces += group
            streams += [i] * len(group)
        got = run_segments(geo, traces, streams=streams)
        k = 0
        for group in groups:
            sim = TLBSimulator(geo)  # segments of one stream share state
            for trace in group:
                assert stats_tuple(got[k]) == stats_tuple(sim.run(trace))
                k += 1

    @pytest.mark.parametrize("trial", range(24))
    def test_steady_state_matches_warmed_scalar(self, trial):
        rng = np.random.default_rng(500 + trial)
        geo = GEOMETRIES[trial % len(GEOMETRIES)]
        n_streams = int(rng.integers(1, 4))
        groups = [[random_trace(rng, int(rng.integers(1, 1200)),
                                int(rng.integers(2, 400)), trial % 3 != 0)
                   for _ in range(int(rng.integers(1, 4)))]
                  for _ in range(n_streams)]
        traces, streams = [], []
        for i, group in enumerate(groups):
            traces += group
            streams += [i] * len(group)
        got = run_steady_segments(geo, traces, streams=streams)
        k = 0
        for group in groups:
            sim = TLBSimulator(geo)
            for trace in group:
                sim.run(trace)  # warm pass
            for trace in group:  # measured pass
                assert stats_tuple(got[k]) == stats_tuple(sim.run(trace))
                k += 1

    @pytest.mark.parametrize("strategy", ["matrix", "rounds", "descent"])
    def test_every_bucketing_strategy(self, strategy, monkeypatch):
        # steer _lru_core's adaptive bucketing so each strategy handles
        # the whole workload, then hold it to the oracle
        if strategy == "matrix":
            monkeypatch.setattr(tlb_mod, "_MATRIX_MAX_PAGES", 10 ** 9)
        elif strategy == "rounds":
            monkeypatch.setattr(tlb_mod, "_MATRIX_MAX_PAGES", 0)
            monkeypatch.setattr(tlb_mod, "_ROUNDS_PARALLELISM", 10 ** 9)
        else:
            monkeypatch.setattr(tlb_mod, "_MATRIX_MAX_PAGES", 0)
            monkeypatch.setattr(tlb_mod, "_ROUNDS_PARALLELISM", 0)
        rng = np.random.default_rng(42)
        for geo in GEOMETRIES:
            trace = random_trace(rng, 2500, 300, True)
            pages = np.repeat(trace.page, trace.weight)
            sizes = np.repeat(trace.size, trace.weight)
            miss = lru_miss_mask(pages, pages // sizes,
                                 geo.l1.n_sets, geo.l1.assoc)
            ref = TLBSimulator(geo).run(trace)
            assert int(miss.sum()) == ref.l1_misses
            # and through the generic two-level path
            got = run_segments(geo, [trace])[0]
            assert stats_tuple(got) == stats_tuple(ref)

    def test_single_access_and_empty(self):
        geo = GEOMETRIES[0]
        one = PageTrace.from_accesses(np.array([HUGE], dtype=np.int64),
                                      np.array([BASE], dtype=np.int64))
        got = run_segments(geo, [one])[0]
        assert stats_tuple(got) == (1, 1, 1)
        assert run_segments(geo, []) == []
        assert run_steady_segments(geo, []) == []


@pytest.fixture(scope="module")
def small_log():
    tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    sim = Simulation(grid, HydroUnit(eos, cfl=0.5), nrefs=0)
    log = WorkLog.attach(sim, helmholtz_eos=False)
    sim.evolve(nend=4)
    return log


def _builders(log, replication, cls_a, cls_b, seed=77):
    pipes = []
    for cls in (cls_a, cls_b):
        pipe = PerformancePipeline(log, FUJITSU, replication=replication,
                                   seed=seed)
        proc, layout, unk, scratch, eos_t, flame_t, flux = \
            pipe._launch_and_allocate()
        pipes.append(cls(space=proc.space, layout=layout, unk=unk,
                         scratch=scratch, eos_table=eos_t,
                         flame_table=flame_t, log=log, flux_scratch=flux,
                         replication=replication, fine_sample_blocks=4,
                         seed=seed))
    return pipes


class TestBuilderEquivalence:
    @pytest.mark.parametrize("replication", [1, 3])
    @pytest.mark.parametrize("unit", ["hydro_sweep", "eos", "eos_gamma",
                                      "guardcell", "flame", "gravity"])
    def test_stream_traces_identical(self, small_log, unit, replication):
        scalar, fast = _builders(small_log, replication,
                                 TraceBuilder, FastTraceBuilder)
        rep = small_log.representative_step()
        inv = UnitInvocation(unit=unit, zones=rep.zones_total,
                             newton_iterations=3 * rep.zones_total)
        # same invocation twice: the RNG stream must stay in lockstep too
        for _ in range(2):
            a = scalar.invocation_stream_trace(rep, inv)
            b = fast.invocation_stream_trace(rep, inv)
            assert np.array_equal(a.page, b.page)
            assert np.array_equal(a.size, b.size)
            assert np.array_equal(a.weight, b.weight)

    def test_full_step_trace_sequence_identical(self, small_log):
        scalar, fast = _builders(small_log, 2, TraceBuilder, FastTraceBuilder)
        rep = small_log.representative_step()
        for inv in rep.invocations:
            a = scalar.invocation_stream_trace(rep, inv)
            b = fast.invocation_stream_trace(rep, inv)
            assert np.array_equal(a.page, b.page)
            assert np.array_equal(a.size, b.size)
            assert np.array_equal(a.weight, b.weight)


class TestEngineEquivalence:
    @pytest.mark.parametrize("flags", [(), ("-Knolargepage",)])
    @pytest.mark.parametrize("replication", [1, 3])
    def test_counter_totals_bit_identical(self, small_log, flags,
                                          replication):
        reports = {
            engine: PerformancePipeline(small_log, FUJITSU, flags=flags,
                                        replication=replication,
                                        engine=engine).run()
            for engine in ("fast", "scalar")
        }
        banks = {k: r.as_counterbank() for k, r in reports.items()}
        assert banks["fast"].totals == banks["scalar"].totals
        assert banks["fast"].time_s == banks["scalar"].time_s
        for unit, tot in reports["scalar"].units.items():
            fast_tot = reports["fast"].units[unit]
            assert stats_tuple(fast_tot.tlb) == stats_tuple(tot.tlb)

    def test_gnu_compiler_also_identical(self, small_log):
        fast = PerformancePipeline(small_log, GNU, engine="fast").run()
        scalar = PerformancePipeline(small_log, GNU, engine="scalar").run()
        assert fast.as_counterbank().totals == scalar.as_counterbank().totals


class TestEngineSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_ENGINE", raising=False)
        assert resolve_engine() == "fast"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_ENGINE", "scalar")
        assert resolve_engine() == "scalar"

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_ENGINE", "scalar")
        assert resolve_engine("fast") == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown perf engine"):
            resolve_engine("simd")

    def test_unknown_env_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_ENGINE", "warp")
        with pytest.raises(ConfigurationError, match="unknown perf engine"):
            resolve_engine()

    def test_params_beat_registry_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_ENGINE", raising=False)
        params = RuntimeParameters.from_par("perf_engine = scalar")
        assert resolve_engine(params=params) == "scalar"

    def test_env_var_beats_params(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_ENGINE", "fast")
        params = RuntimeParameters.from_par("perf_engine = scalar")
        assert resolve_engine(params=params) == "fast"

    def test_argument_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_ENGINE", "scalar")
        params = RuntimeParameters.from_par("perf_engine = scalar")
        assert resolve_engine("fast", params=params) == "fast"

    def test_pipeline_accepts_engine(self, small_log):
        pipe = PerformancePipeline(small_log, GNU, engine="scalar")
        assert pipe.engine == "scalar"

    def test_pipeline_accepts_params(self, small_log, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_ENGINE", raising=False)
        params = RuntimeParameters.from_par("perf_engine = scalar")
        pipe = PerformancePipeline(small_log, GNU, params=params)
        assert pipe.engine == "scalar"
