"""Determinism and concurrency of the multicore replay executor.

The executor's contract is bit-identity *by construction*: a parallel
run schedules the same pure work units as the serial reference, only on
other processes, so every counter, every report, and the session's
replay accounting must come out exactly equal — run to run, jobs to
jobs, and under racing writers sharing one persistent store.
"""

import multiprocessing
import os

import pytest

import repro.perfmodel.parallel as parallel_mod
from repro.experiments.workloads import sod_problem_worklog
from repro.hw.a64fx import A64FX, XEON_E5_2683V3
from repro.perfmodel.parallel import ReplayExecutor, resolve_jobs
from repro.perfmodel.pipeline import PerformancePipeline, run_batch
from repro.perfmodel.session import ReplaySession, session_scope
from repro.toolchain.compiler import FUJITSU, GNU
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def sod_log():
    return sod_problem_worklog(quick=True)


def _fingerprint(report):
    """Every number the experiment harness can observe, exactly."""
    units = {
        name: (tot.tlb.accesses, tot.tlb.l1_misses, tot.tlb.l2_misses,
               repr(tot.work))
        for name, tot in report.units.items()
    }
    bank = report.as_counterbank()
    counters = {event.value: total for event, total in bank.totals.items()}
    return (units, counters, report.seconds, report.flash_timer_s,
            report.uses_huge_pages)


def _batch_pipelines(log, session):
    """Four configurations with real sharing structure: two share page
    traces (base-page toolchains), one has its own allocation story
    (Fujitsu huge pages), one replays on a different TLB geometry."""
    return [
        PerformancePipeline(log, FUJITSU, session=session),
        PerformancePipeline(log, FUJITSU, flags=("-Knolargepage",),
                            session=session),
        PerformancePipeline(log, GNU, machine=A64FX, session=session),
        PerformancePipeline(log, GNU, machine=XEON_E5_2683V3,
                            session=session),
    ]


class TestResolveJobs:
    """Precedence: explicit argument > REPRO_REPLAY_JOBS > parameter."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_JOBS", raising=False)

    def test_default_is_serial(self):
        assert resolve_jobs() == 1

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "3")
        assert resolve_jobs() == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_params_override_default(self):
        assert resolve_jobs(params={"replay_jobs": 5}) == 5

    def test_auto_and_zero_mean_one_per_core(self, monkeypatch):
        cores = os.cpu_count() or 1
        assert resolve_jobs(0) == cores
        assert resolve_jobs("auto") == cores
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "auto")
        assert resolve_jobs() == cores

    @pytest.mark.parametrize("bad", ["-1", "two", "1.5"])
    def test_invalid_values_raise(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_jobs(bad)


class TestBitIdentity:
    """jobs=N results and accounting == the jobs=1 reference, exactly."""

    def _run(self, log, jobs, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_JOBS", str(jobs))
        session = ReplaySession(persist=False)
        try:
            reports = run_batch(_batch_pipelines(log, session))
        finally:
            session.close()
        return [_fingerprint(r) for r in reports], session.stats

    def test_jobs2_matches_serial(self, sod_log, monkeypatch):
        ref_prints, ref_stats = self._run(sod_log, 1, monkeypatch)
        par_prints, par_stats = self._run(sod_log, 2, monkeypatch)
        assert par_prints == ref_prints
        # the *accounting* is as-if-sequential too: same replay count,
        # same hit classification, not merely the same totals
        assert par_stats == ref_stats

    def test_parallel_runs_are_repeatable(self, sod_log, monkeypatch):
        first, s1 = self._run(sod_log, 2, monkeypatch)
        second, s2 = self._run(sod_log, 2, monkeypatch)
        assert first == second
        assert s1 == s2

    def test_geometry_sweep_unaffected_by_jobs(self, sod_log, monkeypatch):
        from dataclasses import replace

        geometries = [replace(A64FX.tlb,
                              l1=replace(A64FX.tlb.l1, entries=e, assoc=e))
                      for e in (8, 16, 64)]
        prints = []
        for jobs in (1, 2):
            monkeypatch.setenv("REPRO_REPLAY_JOBS", str(jobs))
            session = ReplaySession(persist=False)
            try:
                pipe = PerformancePipeline(sod_log, FUJITSU, session=session)
                prints.append([_fingerprint(r)
                               for r in pipe.run_geometries(geometries)])
            finally:
                session.close()
        assert prints[0] == prints[1]


class TestExecutorFallback:
    """Pool-level damage degrades to inline execution, never to a loss."""

    def test_pool_failure_retries_inline(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_run_unit", lambda u: [u])
        ex = ReplayExecutor(2)

        def broken_pool():
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(ex, "_ensure_pool", broken_pool)
        units = [("stream", "fast", None, []), ("fine", "fast", None, [])]
        assert ex.run_units(units) == [[u] for u in units]
        assert ex.fallbacks == 1

    def test_genuine_errors_propagate_inline(self, monkeypatch):
        def boom(unit):
            raise ValueError("bad trace")

        monkeypatch.setattr(parallel_mod, "_run_unit", boom)
        with pytest.raises(ValueError, match="bad trace"):
            ReplayExecutor(1).run_units([("stream", "fast", None, [])])

    def test_unknown_unit_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_mod._run_unit(("granular", "fast", None, []))

    def test_serial_executor_never_forks(self):
        ex = ReplayExecutor(1)
        ex.run_units([])
        assert ex._pool is None


class TestTraceTier:
    """The zero-copy handoff end to end: cold runs synthesize across the
    pool and ship traces by reference; a warm trace store over a fresh
    replay store skips synthesis entirely."""

    def _run(self, log, tmp_path, name, traces, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "2")
        session = ReplaySession(store_dir=str(tmp_path / name),
                                trace_dir=traces)
        try:
            reports = run_batch(_batch_pipelines(log, session))
        finally:
            executor = session._executor
            session.close()
        return [_fingerprint(r) for r in reports], session.stats, executor

    def test_warm_trace_store_skips_synthesis(self, tmp_path, sod_log,
                                              monkeypatch):
        traces = tmp_path / "traces"
        cold_prints, cold_stats, cold_ex = self._run(
            sod_log, tmp_path, "replays-cold", traces, monkeypatch)
        assert cold_stats.synthesis_count > 0
        # the pool path ships references, never arrays
        assert cold_ex.traces_pickled_bytes == 0
        assert cold_ex.traces_mapped_bytes > 0
        assert cold_ex.fallbacks == 0

        # a *fresh* replay store over the warm trace store: every replay
        # runs again, but synthesis is gone — the bundles map from disk
        warm_prints, warm_stats, warm_ex = self._run(
            sod_log, tmp_path, "replays-warm", traces, monkeypatch)
        assert warm_stats.synthesis_count == 0
        assert warm_stats.trace_store_hits > 0
        assert warm_stats.replays == cold_stats.replays
        assert warm_ex.traces_pickled_bytes == 0
        assert warm_prints == cold_prints

        # and both are bit-identical to the serial, disabled reference
        ref = [_fingerprint(r) for r in run_batch(
            _batch_pipelines(sod_log, ReplaySession.disabled()))]
        assert cold_prints == ref

    def test_trace_cache_off_disables_the_tier(self, tmp_path, sod_log,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "1")
        session = ReplaySession(store_dir=str(tmp_path / "replays"))
        try:
            run_batch(_batch_pipelines(sod_log, session))
        finally:
            session.close()
        # the persistent tier is off (nothing written anywhere), though
        # the in-session bundle memory cache still dedupes synthesis
        assert session.trace_store is None
        assert not (tmp_path / "replays" / "traces").exists()


class TestLifecycle:
    """Worker pools must not outlive the scope that forked them."""

    def _session_with_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_JOBS", "2")
        session = ReplaySession(persist=False)
        executor = session._executor_for_batch()
        executor._ensure_pool()
        assert executor._pool is not None
        return session, executor

    def test_session_scope_close_shuts_the_pool(self, monkeypatch):
        session, executor = self._session_with_pool(monkeypatch)
        with session_scope(session, close=True):
            pass
        assert executor._pool is None

    def test_session_scope_default_keeps_the_pool(self, monkeypatch):
        session, executor = self._session_with_pool(monkeypatch)
        try:
            with session_scope(session):
                pass
            assert executor._pool is not None
        finally:
            session.close()

    def test_session_context_manager_closes(self, monkeypatch):
        session, executor = self._session_with_pool(monkeypatch)
        with session:
            pass
        assert executor._pool is None

    def test_close_is_idempotent_and_nonfinal(self, sod_log):
        session = ReplaySession(persist=False)
        session.close()
        session.close()
        # non-final: the next batch lazily re-creates the executor
        report = PerformancePipeline(sod_log, FUJITSU, session=session).run()
        assert report.n_steps > 0
        session.close()


class TestRacingWriters:
    """Concurrent sessions over one store: atomic renames mean the last
    writer wins a whole entry, never a torn one."""

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs fork to inherit the worklog without pickling")
    def test_racing_writers_leave_store_consistent(self, tmp_path, sod_log):
        store = str(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")

        def worker():
            session = ReplaySession(store_dir=store)
            PerformancePipeline(sod_log, FUJITSU, session=session).run()

        procs = [ctx.Process(target=worker) for _ in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=300)
        assert all(p.exitcode == 0 for p in procs)

        # a warm reader must find a fully consistent store: zero new
        # replays, and results bit-identical to the disabled reference
        ref = PerformancePipeline(
            sod_log, FUJITSU, session=ReplaySession.disabled()).run()
        warm = ReplaySession(store_dir=store)
        via = PerformancePipeline(sod_log, FUJITSU, session=warm).run()
        assert _fingerprint(via) == _fingerprint(ref)
        assert warm.stats.replays == 0
        assert warm.stats.disk_hits > 0
