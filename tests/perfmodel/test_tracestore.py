"""Fault-injection and contract tests for the zero-copy trace tier.

Mirrors ``tests/util/test_artifacts.py`` for the binary bundle codec:
truncated, zeroed, or tampered bundles must quarantine and miss (the
caller resynthesizes — never a wrong number), eviction racing a mapped
reader is blocked by pinning, and racing writers converge on a
bit-identical entry.  The session-level tests cover the tier's headline
contract: a warm trace store makes a new engine or geometry over a known
workload skip synthesis entirely, cross-process, with zero pickled trace
bytes on the pool path.
"""

import os
import threading

import numpy as np
import pytest

from repro.hw.trace import PageTrace
from repro.perfmodel.tracestore import (
    TRACE_STORE_SCHEMA,
    TraceRef,
    TraceStore,
    resolve_trace_cache_bytes,
    resolve_trace_cache_dir,
    resolve_trace_thp,
    trace_cache_configured,
)
from repro.util import artifacts
from repro.util.artifacts import ArtifactError
from repro.util.errors import ConfigurationError

P = 65536


def _trace(rng, n):
    pages = rng.integers(0, 64, size=n) * P
    return PageTrace.from_accesses(
        pages, np.full(pages.shape, P, dtype=np.int64))


def _bundle(seed=0):
    rng = np.random.default_rng(seed)
    stream = [_trace(rng, 40), _trace(rng, 25)]
    fine = [(3, _trace(rng, 10), 1.5), (7, _trace(rng, 12), 2.0)]
    return stream, fine


def _assert_traces_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g.page, w.page)
        np.testing.assert_array_equal(g.size, w.size)
        np.testing.assert_array_equal(g.weight, w.weight)


# --- corruption injectors (as in test_artifacts) -----------------------------

def truncate_at(path, offset):
    path.write_bytes(path.read_bytes()[:offset])


def zero_file(path):
    path.write_bytes(b"\x00" * path.stat().st_size)


# --- environment resolvers ---------------------------------------------------

class TestResolvers:
    def test_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert resolve_trace_cache_dir() is None
        assert trace_cache_configured()

    def test_auto_uses_xdg(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert resolve_trace_cache_dir() == tmp_path / "repro" / "traces"
        assert not trace_cache_configured()

    def test_explicit_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "t"))
        assert resolve_trace_cache_dir() == tmp_path / "t"
        assert trace_cache_configured()

    def test_bytes_resolver_shares_the_contract(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_BYTES", "64M")
        assert resolve_trace_cache_bytes() == 64 * 1024 * 1024

    def test_bad_bytes_name_the_trace_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_BYTES", "lots")
        with pytest.raises(ConfigurationError, match="REPRO_TRACE_CACHE_BYTES"):
            resolve_trace_cache_bytes()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("on", True), ("true", True),
        ("", False), ("0", False), ("off", False),
    ])
    def test_thp_resolver(self, value, expected):
        assert resolve_trace_thp(value) is expected

    def test_thp_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_trace_thp("maybe")


# --- roundtrip and the zero-copy load path -----------------------------------

class TestRoundtrip:
    def test_bit_identical_and_mapped_readonly(self, tmp_path):
        store = TraceStore(tmp_path)
        stream, fine = _bundle()
        nbytes = store.save_bundle("k1", stream, fine)
        assert nbytes > 0
        bundle = store.load_bundle("k1")
        assert bundle is not None
        _assert_traces_equal(bundle.stream, stream)
        _assert_traces_equal([t for _, t, _ in bundle.fine],
                             [t for _, t, _ in fine])
        assert [(j, sc) for j, _, sc in bundle.fine] == [(3, 1.5), (7, 2.0)]
        # the loaded arrays are read-only views of one file mapping
        for t in bundle.traces:
            assert not t.page.flags.writeable
            assert t.page.base is not None
        assert bundle.key == "k1"
        assert bundle.root == store.root
        assert bundle.nbytes == nbytes
        assert store.stats.mapped_bytes == nbytes

    def test_payload_is_page_aligned(self, tmp_path):
        store = TraceStore(tmp_path)
        stream, fine = _bundle()
        store.save_bundle("k1", stream, fine)
        header, offset = TraceStore._encode(stream, fine)
        assert offset % 4096 == 0
        assert len(header) == offset

    def test_empty_bundle_roundtrips(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_bundle("empty", [PageTrace.empty()], [])
        bundle = store.load_bundle("empty")
        assert bundle is not None
        assert bundle.stream[0].n_events == 0
        assert bundle.fine == []

    def test_missing_key_is_a_quiet_miss(self, tmp_path):
        assert TraceStore(tmp_path).load_bundle("nope") is None

    def test_sidecar_written(self, tmp_path):
        store = TraceStore(tmp_path)
        stream, fine = _bundle()
        store.save_bundle("k1", stream, fine)
        path = store.path_for("syn-k1")
        assert artifacts.verify_checksum(path) is True


class TestTraceRef:
    def test_payloads_and_resolution(self, tmp_path):
        store = TraceStore(tmp_path)
        stream, fine = _bundle()
        store.save_bundle("k1", stream, fine)
        bundle = store.load_bundle("k1")
        ref = bundle.stream_payload()
        assert isinstance(ref, TraceRef)
        _assert_traces_equal(ref.resolve(), stream)
        for pos, (_, want, _) in enumerate(fine):
            fref = bundle.fine_payload(pos)
            assert isinstance(fref, TraceRef)
            _assert_traces_equal(fref.resolve(), [want])

    def test_in_memory_bundle_travels_by_value(self):
        from repro.perfmodel.tracestore import TraceBundle

        stream, fine = _bundle()
        bundle = TraceBundle(stream=stream, fine=fine)
        assert bundle.stream_payload() is stream
        assert bundle.fine_payload(0) == [fine[0][1]]

    def test_missing_bundle_raises(self, tmp_path):
        ref = TraceRef(root=str(tmp_path), key="gone", sections=(0,),
                       nbytes=0)
        with pytest.raises(ArtifactError, match="gone"):
            ref.resolve()


# --- fault injection ---------------------------------------------------------

class TestFaultInjection:
    def _saved(self, tmp_path, key="k1"):
        store = TraceStore(tmp_path)
        stream, fine = _bundle()
        store.save_bundle(key, stream, fine)
        return store, store.path_for(f"syn-{key}")

    @pytest.mark.parametrize("frac", [0.05, 0.3, 0.6, 0.95])
    def test_truncation_quarantines(self, tmp_path, frac):
        store, path = self._saved(tmp_path)
        truncate_at(path, int(path.stat().st_size * frac))
        assert store.load_bundle("k1") is None
        assert store.stats.corrupt == 1
        assert path.with_name(path.name + ".corrupt").exists()
        assert not path.exists()

    def test_zeroed_file_quarantines(self, tmp_path):
        store, path = self._saved(tmp_path)
        zero_file(path)
        assert store.load_bundle("k1") is None
        assert store.stats.corrupt == 1

    def test_bad_magic_quarantines(self, tmp_path):
        store, path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTTRACE"
        path.write_bytes(bytes(data))
        artifacts.write_checksum(path)  # valid sidecar, invalid payload
        assert store.load_bundle("k1") is None
        assert store.stats.corrupt == 1

    def test_schema_flip_quarantines(self, tmp_path):
        import struct

        store, path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[8:16] = struct.pack("<q", TRACE_STORE_SCHEMA + 1)
        path.write_bytes(bytes(data))
        artifacts.write_checksum(path)
        assert store.load_bundle("k1") is None
        assert store.stats.corrupt == 1

    def test_checksum_tamper_quarantines(self, tmp_path):
        store, path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[-8:] = b"\xff" * 8  # flip payload, keep the old sidecar
        path.write_bytes(bytes(data))
        assert store.load_bundle("k1") is None
        assert store.stats.corrupt == 1

    def test_payload_size_mismatch_quarantines(self, tmp_path):
        store, path = self._saved(tmp_path)
        with open(path, "ab") as f:
            f.write(b"\x00" * 8)  # one extra int64 the header knows nothing of
        artifacts.write_checksum(path)
        assert store.load_bundle("k1") is None
        assert store.stats.corrupt == 1

    def test_quarantine_then_resynthesize_overwrites(self, tmp_path):
        store, path = self._saved(tmp_path)
        truncate_at(path, 100)
        assert store.load_bundle("k1") is None
        # the caller's recovery: synthesize again and save over the miss
        stream, fine = _bundle()
        store.save_bundle("k1", stream, fine)
        bundle = store.load_bundle("k1")
        assert bundle is not None
        _assert_traces_equal(bundle.stream, stream)
        assert store.stats.corrupt == 1


# --- eviction, pinning, and racing writers -----------------------------------

class TestEvictionAndPinning:
    def test_pinned_entry_survives_eviction(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=None)
        stream, fine = _bundle()
        nbytes = store.save_bundle("hot", stream, fine)
        for i in range(4):
            store.save_bundle(f"cold{i}", *_bundle(seed=i + 1))
        os.utime(store.path_for("syn-hot"), (0, 0))  # oldest by far
        store.max_bytes = nbytes  # force the budget far under the total
        with store.pinned("syn-hot"):
            store.enforce_budget()
            assert store.path_for("syn-hot").exists()
        assert store.stats.evictions > 0
        bundle = store.load_bundle("hot")
        assert bundle is not None
        _assert_traces_equal(bundle.stream, stream)

    def test_mapped_reader_survives_unlink(self, tmp_path):
        # POSIX semantics behind the pinning story: even when eviction
        # does race a reader that already mapped, the open mapping stays
        # valid until dropped — eviction can never tear an in-flight
        # replay's arrays out from under it
        store = TraceStore(tmp_path)
        stream, fine = _bundle()
        store.save_bundle("k1", stream, fine)
        bundle = store.load_bundle("k1")
        store.path_for("syn-k1").unlink()
        _assert_traces_equal(bundle.stream, stream)

    def test_racing_writers_converge_bit_identically(self, tmp_path):
        # synthesis is deterministic, so racing writers write the same
        # content; atomic tmp+rename means the survivor is one complete
        # entry, never an interleaving
        stream, fine = _bundle()
        errors = []

        def writer():
            try:
                TraceStore(tmp_path).save_bundle("k1", stream, fine)
            except Exception as exc:  # noqa: BLE001 - test collects all
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        store = TraceStore(tmp_path)
        assert artifacts.verify_checksum(store.path_for("syn-k1")) is True
        bundle = store.load_bundle("k1")
        assert bundle is not None
        _assert_traces_equal(bundle.stream, stream)
        _assert_traces_equal([t for _, t, _ in bundle.fine],
                             [t for _, t, _ in fine])


class TestTHP:
    def test_advise_counter_and_describe(self, tmp_path):
        import mmap as mmap_mod

        store = TraceStore(tmp_path, thp=True)
        stream, fine = _bundle()
        store.save_bundle("k1", stream, fine)
        bundle = store.load_bundle("k1")
        assert bundle is not None
        assert bundle.thp is True
        doc = store.describe()
        assert doc["thp"] is True
        assert doc["mapped_bytes"] == bundle.nbytes
        if hasattr(mmap_mod, "MADV_HUGEPAGE"):
            assert doc["thp_advised"] == 1
        else:  # platform without madvise: best-effort means zero, not a crash
            assert doc["thp_advised"] == 0

    def test_thp_off_never_advises(self, tmp_path):
        store = TraceStore(tmp_path, thp=False)
        store.save_bundle("k1", *_bundle())
        store.load_bundle("k1")
        assert store.stats.thp_advised == 0
