"""The sharded, size-bounded replay store and its cache-dir resolver.

Contracts from ``docs/performance_model.md`` ("Cache & concurrency
invariants") and ``docs/serving.md``: sharded layout with transparent
bit-identical flat migration, LRU eviction that honours pins and a
byte budget under racing writers, and the single ``off|auto|<dir>`` /
byte-count resolver that raises ``ConfigurationError`` on malformed
values instead of silently changing cache behaviour.
"""

import os
import threading
from pathlib import Path

import pytest

from repro.perfmodel.session import ReplaySession
from repro.perfmodel.store import (
    ReplayStore,
    resolve_cache_bytes,
    resolve_cache_dir,
    shard_for,
)
from repro.util import artifacts
from repro.util.errors import ConfigurationError

DIGEST = "0123456789abcdef0123456789abcdef01234567"


class TestResolverContract:
    """resolve_cache_dir / resolve_cache_bytes: the one env reader."""

    @pytest.mark.parametrize("value", ["off", "OFF", "0", "none", "false"])
    def test_off_values_disable_persistence(self, value):
        assert resolve_cache_dir(value) is None

    @pytest.mark.parametrize("value", ["auto", "on", "default", ""])
    def test_auto_values_use_xdg(self, value, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert resolve_cache_dir(value) == tmp_path / "repro" / "replays"

    def test_explicit_directory(self, tmp_path):
        assert resolve_cache_dir(str(tmp_path / "x")) == tmp_path / "x"

    def test_env_is_read_when_value_omitted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_CACHE", str(tmp_path / "envdir"))
        assert resolve_cache_dir() == tmp_path / "envdir"
        monkeypatch.setenv("REPRO_REPLAY_CACHE", "off")
        assert resolve_cache_dir() is None

    def test_existing_non_directory_raises(self, tmp_path):
        bogus = tmp_path / "a-file"
        bogus.write_text("not a directory")
        with pytest.raises(ConfigurationError):
            resolve_cache_dir(str(bogus))

    def test_session_without_store_dir_honours_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_CACHE", "off")
        session = ReplaySession()
        assert session.store is None
        assert session.persist is False

    @pytest.mark.parametrize("value,expected", [
        ("", None), ("off", None), ("0", None), (0, None),
        ("1024", 1024), (2048, 2048),
        ("4K", 4 << 10), ("256M", 256 << 20), ("2g", 2 << 30),
        ("16 M", 16 << 20),
    ])
    def test_cache_bytes_values(self, value, expected):
        assert resolve_cache_bytes(value) == expected

    @pytest.mark.parametrize("value", ["lots", "12Q", "-5", -5, "M"])
    def test_cache_bytes_malformed_raises(self, value):
        with pytest.raises(ConfigurationError):
            resolve_cache_bytes(value)

    def test_cache_bytes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_CACHE_BYTES", "8M")
        assert resolve_cache_bytes() == 8 << 20


class TestSharding:
    def test_shard_is_trailing_digest_prefix(self):
        assert shard_for(f"cfg-{DIGEST}") == DIGEST[:2]
        assert shard_for(f"memo-{DIGEST}") == DIGEST[:2]

    def test_undigested_name_still_shards(self):
        shard = shard_for("no-digest-here")
        assert len(shard) == 2
        int(shard, 16)  # two hex chars

    def test_save_lands_in_shard(self, tmp_path):
        store = ReplayStore(tmp_path)
        store.save(f"cfg-{DIGEST}", {"x": 1})
        path = tmp_path / DIGEST[:2] / f"cfg-{DIGEST}.pkl"
        assert path.exists()
        assert artifacts.checksum_path(path).exists()
        assert store.load(f"cfg-{DIGEST}") == {"x": 1}


class TestFlatMigration:
    def _flat_store(self, root: Path, n: int = 6) -> dict[str, bytes]:
        """A PR 5-style flat layout; returns name -> payload bytes."""
        root.mkdir(parents=True, exist_ok=True)
        payloads = {}
        for i in range(n):
            name = f"cfg-{i:040x}"
            artifacts.save_pickle(root / f"{name}.pkl", {"i": i}, version=7)
            payloads[name] = (root / f"{name}.pkl").read_bytes()
        return payloads

    def test_ensure_migrates_bit_identically(self, tmp_path):
        payloads = self._flat_store(tmp_path)
        store = ReplayStore(tmp_path)
        store.ensure()
        assert store.stats.migrated == len(payloads)
        assert not list(tmp_path.glob("*.pkl"))  # nothing left flat
        for name, raw in payloads.items():
            sharded = store.path_for(name)
            assert sharded.read_bytes() == raw  # moved, not rewritten
            # sidecar still validates: the checksum names the file name,
            # which the move preserved
            assert artifacts.verify_checksum(sharded) is True
            assert store.load(name, version=7) == {
                "i": int(name.split("-")[1], 16)}

    def test_flat_entry_migrates_on_load(self, tmp_path):
        store = ReplayStore(tmp_path)
        store.ensure()
        # a writer running pre-shard code drops a flat entry afterwards
        name = f"trace-{DIGEST}"
        artifacts.save_pickle(tmp_path / f"{name}.pkl", [1, 2, 3])
        assert store.load(name) == [1, 2, 3]
        assert store.path_for(name).exists()
        assert not (tmp_path / f"{name}.pkl").exists()

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ReplayStore(tmp_path)
        name = f"cfg-{DIGEST}"
        store.save(name, {"ok": True})
        store.path_for(name).write_bytes(b"garbage")
        assert store.load(name) is None
        assert store.stats.corrupt == 1
        assert list(tmp_path.glob("**/*.corrupt"))


class TestEviction:
    def _fill(self, store: ReplayStore, n: int, *, prefix="cfg",
              size: int = 2000) -> list[str]:
        names = [f"{prefix}-{i:040x}" for i in range(n)]
        for i, name in enumerate(names):
            store.save(name, os.urandom(size))
            # distinct, strictly increasing mtimes (filesystem clocks can
            # be coarse): entry i is older than entry i+1
            os.utime(store.path_for(name), (1_000_000 + i, 1_000_000 + i))
        return names

    def test_budget_enforced_oldest_first(self, tmp_path):
        store = ReplayStore(tmp_path, max_bytes=100_000)
        names = self._fill(store, 8, size=30_000)
        # saves enforce on the way: total stays under the budget
        assert store.size_bytes() <= 100_000
        assert store.stats.evictions > 0
        # the newest entry always survives
        assert store.path_for(names[-1]).exists()
        # the oldest is the one that went
        assert not store.path_for(names[0]).exists()

    def test_low_water_hysteresis(self, tmp_path):
        store = ReplayStore(tmp_path, max_bytes=100_000)
        self._fill(store, 8, size=30_000)
        # after the final enforcement the store is at/below low water,
        # so the next enforcement is a no-op
        assert store.size_bytes() <= 80_000
        assert store.enforce_budget() == 0

    def test_pinned_entry_never_evicted(self, tmp_path):
        store = ReplayStore(tmp_path)  # unbounded: fill without evicting
        names = self._fill(store, 1, size=2000)
        with store.pinned(names[0]):
            store.evict(target_bytes=0)
            assert store.path_for(names[0]).exists()
            assert store.stats.pinned_skips > 0
        # unpinned, it is fair game
        store.evict(target_bytes=0)
        assert not store.path_for(names[0]).exists()

    def test_pins_are_refcounted(self, tmp_path):
        store = ReplayStore(tmp_path)
        store.pin("x")
        store.pin("x")
        store.unpin("x")
        assert store.is_pinned("x")
        store.unpin("x")
        assert not store.is_pinned("x")

    def test_load_refreshes_recency(self, tmp_path):
        store = ReplayStore(tmp_path, max_bytes=None)
        names = self._fill(store, 4, size=2000)
        store.load(names[0])  # utime() bumps the oldest entry to now
        entries = store._entries()
        assert entries[-1].path == store.path_for(names[0])

    def test_lru_bound_under_racing_writers(self, tmp_path):
        """Concurrent saves from many threads never leave the store
        over budget once the dust settles (the serving layer's pattern:
        one shared bounded store, writers racing)."""
        budget = 60_000
        store = ReplayStore(tmp_path, max_bytes=budget)
        errors: list[BaseException] = []

        def writer(base: int) -> None:
            try:
                for i in range(10):
                    store.save(f"cfg-{base + i:040x}", os.urandom(3000))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k * 100,))
                   for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        store.enforce_budget()
        assert store.size_bytes() <= budget
        # and everything still on disk loads cleanly
        for entry in store._entries():
            name = entry.path.name[:-len(".pkl")]
            assert store.load(name) is not None

    def test_describe_is_json_ready(self, tmp_path):
        import json
        store = ReplayStore(tmp_path, max_bytes=12345)
        self._fill(store, 3, size=500)
        doc = store.describe()
        json.dumps(doc)
        assert doc["entries"] == 3
        assert doc["max_bytes"] == 12345
        assert doc["shards"] == len({shard_for(f"cfg-{i:040x}")
                                     for i in range(3)})


class TestSessionIntegration:
    def test_session_store_is_sharded_and_bounded(self, tmp_path):
        session = ReplaySession(store_dir=tmp_path, max_bytes=123456)
        store = session.store
        assert store is not None
        assert store.max_bytes == 123456
        session.memo("t", ("a",), lambda: "payload")
        key = ReplaySession.memo_key("t", ("a",))
        assert (tmp_path / key[:2] / f"memo-{key}.pkl").exists()

    def test_unwritable_store_degrades_to_memory(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("file, not dir")  # mkdir will fail
        session = ReplaySession(store_dir=target)
        assert session.store is None
        assert session.memo("t", ("a",), lambda: 42) == 42
