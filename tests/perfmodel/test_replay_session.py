"""The shared-trace replay session.

The session is a pure accelerator: any pipeline run through a sharing
(and persisting) session must be bit-identical to the same run through a
disabled session — the per-config behaviour the seed shipped — on both
replay engines, under any configuration draw, cold store or warm.
"""

import pickle
from dataclasses import replace

import pytest

from repro.experiments.workloads import (
    eos_problem_worklog,
    hydro_problem_worklog,
    sod_problem_worklog,
)
from repro.hw.a64fx import A64FX, XEON_E5_2683V3
from repro.perfmodel.pipeline import PerformancePipeline
from repro.perfmodel.session import ReplaySession
from repro.toolchain.compiler import ARM, CRAY, FUJITSU, GNU
from repro.util import artifacts


@pytest.fixture(scope="module")
def sod_log():
    return sod_problem_worklog(quick=True)


@pytest.fixture(scope="module")
def eos_log():
    return eos_problem_worklog(quick=True)


@pytest.fixture(scope="module")
def hydro_log():
    return hydro_problem_worklog(quick=True)


def _fingerprint(report):
    """Every number the experiment harness can observe, exactly."""
    units = {
        name: (tot.tlb.accesses, tot.tlb.l1_misses, tot.tlb.l2_misses,
               repr(tot.work))
        for name, tot in report.units.items()
    }
    bank = report.as_counterbank()
    counters = {event.value: total for event, total in bank.totals.items()}
    return (units, counters, report.seconds, report.flash_timer_s,
            report.uses_huge_pages)


def _run(log, compiler, session, **kwargs):
    return PerformancePipeline(log, compiler, session=session, **kwargs).run()


class TestSessionEquivalence:
    """Shared-session results == per-config results, bit for bit."""

    def test_randomised_draws(self, sod_log):
        """Property test: random (compiler, flags, machine, replication,
        engine) draws, each run both ways through ONE shared session —
        so later draws exercise reuse against earlier ones."""
        import random

        rng = random.Random(20260805)
        shared = ReplaySession(persist=False)
        compilers = (GNU, CRAY, ARM, FUJITSU)
        machines = (A64FX, XEON_E5_2683V3)
        for _ in range(8):
            compiler = rng.choice(compilers)
            flags = (("-Knolargepage",) if compiler is FUJITSU
                     and rng.random() < 0.5 else ())
            kwargs = dict(flags=flags,
                          machine=rng.choice(machines),
                          replication=rng.randint(1, 3),
                          engine=rng.choice(("fast", "scalar")))
            ref = _run(sod_log, compiler, ReplaySession.disabled(), **kwargs)
            via = _run(sod_log, compiler, shared, **kwargs)
            assert _fingerprint(via) == _fingerprint(ref), kwargs
        assert shared.stats.configs == 8
        # the glibc compilers share layouts: some draw must have reused a
        # config, a trace bundle, or a fine trace from an earlier one
        reused = (shared.stats.memory_hits + shared.stats.disk_hits
                  + shared.stats.trace_hits)
        assert shared.stats.replays < 8 or reused > 0

    @pytest.mark.parametrize("engine", ["fast", "scalar"])
    def test_paper_workloads(self, eos_log, hydro_log, engine):
        shared = ReplaySession(persist=False)
        for log in (eos_log, hydro_log):
            kwargs = dict(replication=2, engine=engine)
            ref = _run(log, FUJITSU, ReplaySession.disabled(), **kwargs)
            via = _run(log, FUJITSU, shared, **kwargs)
            assert _fingerprint(via) == _fingerprint(ref)

    def test_fine_dedup_within_config(self, hydro_log):
        """The 3-d hydro step repeats identical sweeps; their fine traces
        must deduplicate without changing a single counter."""
        shared = ReplaySession(persist=False)
        kwargs = dict(replication=2, engine="fast")
        ref = _run(hydro_log, FUJITSU, ReplaySession.disabled(), **kwargs)
        via = _run(hydro_log, FUJITSU, shared, **kwargs)
        assert shared.stats.fine_deduped > 0
        assert _fingerprint(via) == _fingerprint(ref)


class TestPersistence:
    """Cold vs warm store invariance, and corruption recovery."""

    def test_cold_then_warm_identical(self, tmp_path, sod_log):
        kwargs = dict(replication=2, engine="fast")
        cold = ReplaySession(store_dir=tmp_path)
        first = _run(sod_log, FUJITSU, cold, **kwargs)
        assert cold.stats.replays == 1

        warm = ReplaySession(store_dir=tmp_path)
        second = _run(sod_log, FUJITSU, warm, **kwargs)
        assert warm.stats.replays == 0
        assert warm.stats.disk_hits == 1
        assert _fingerprint(second) == _fingerprint(first)

    def test_corrupted_store_quarantined_and_rebuilt(self, tmp_path, sod_log):
        kwargs = dict(replication=1, engine="fast")
        ref = _run(sod_log, FUJITSU, ReplaySession(store_dir=tmp_path),
                   **kwargs)
        stored = sorted(tmp_path.glob("**/*.pkl"))
        assert stored, "the session persisted nothing"
        for path in stored:
            path.write_bytes(b"\x00not a pickle at all")

        again = ReplaySession(store_dir=tmp_path)
        out = _run(sod_log, FUJITSU, again, **kwargs)
        assert _fingerprint(out) == _fingerprint(ref)
        assert again.stats.replays == 1 and again.stats.disk_hits == 0
        assert list(tmp_path.glob("**/*.corrupt")), "corruption not quarantined"

        # the rebuild re-populated the store: a third session is warm
        third = ReplaySession(store_dir=tmp_path)
        _run(sod_log, FUJITSU, third, **kwargs)
        assert third.stats.replays == 0

    def test_unusable_store_degrades_to_memory(self, tmp_path, sod_log):
        # a store path that cannot become a directory (works for root too,
        # unlike permission bits)
        store = tmp_path / "occupied"
        store.write_text("not a directory")
        session = ReplaySession(store_dir=store)
        report = _run(sod_log, FUJITSU, session, replication=1,
                      engine="fast")
        ref = _run(sod_log, FUJITSU, ReplaySession.disabled(),
                   replication=1, engine="fast")
        assert _fingerprint(report) == _fingerprint(ref)
        assert not session.persist  # degraded, not crashed


class TestMemo:
    def test_memo_roundtrip_and_validation(self, tmp_path):
        calls = []

        def build():
            calls.append(1)
            return {"answer": 42}

        s1 = ReplaySession(store_dir=tmp_path)
        assert s1.memo("demo", ("a", 1), build) == {"answer": 42}
        assert s1.memo("demo", ("a", 1), build) == {"answer": 42}
        assert len(calls) == 1 and s1.stats.memo_hits == 1

        s2 = ReplaySession(store_dir=tmp_path)
        assert s2.memo("demo", ("a", 1), build) == {"answer": 42}
        assert len(calls) == 1  # served from disk

        # a validator that rejects the stored value forces a rebuild
        s3 = ReplaySession(store_dir=tmp_path)
        assert s3.memo("demo", ("a", 1), build,
                       validate=lambda v: False) == {"answer": 42}
        assert len(calls) == 2

        # different key parts are different memos
        assert s1.memo("demo", ("a", 2), build) == {"answer": 42}
        assert len(calls) == 3

    def test_disabled_session_always_builds(self):
        calls = []
        s = ReplaySession.disabled()
        s.memo("demo", (), lambda: calls.append(1))
        s.memo("demo", (), lambda: calls.append(1))
        assert len(calls) == 2


class TestWorkLogDigest:
    def test_deterministic_and_pickle_stable(self, sod_log):
        clone = pickle.loads(pickle.dumps(sod_log))
        assert clone.digest() == sod_log.digest()
        assert len(sod_log.digest()) == 64

    def test_sensitive_to_recorded_work(self, sod_log):
        reference = sod_log.digest()

        clone = pickle.loads(pickle.dumps(sod_log))
        clone.steps[0].dt *= 2.0
        assert clone.digest() != reference

        clone = pickle.loads(pickle.dumps(sod_log))
        inv = clone.steps[0].invocations
        clone.steps[0].invocations = (
            replace(inv[0], zones=inv[0].zones + 1), *inv[1:])
        assert clone.digest() != reference

        clone = pickle.loads(pickle.dumps(sod_log))
        clone.steps[0].slots = clone.steps[0].slots[:-1]
        clone.steps[0].levels = clone.steps[0].levels[:-1]
        assert clone.digest() != reference

    def test_distinct_workloads_distinct_digests(self, sod_log, eos_log,
                                                 hydro_log):
        digests = {log.digest() for log in (sod_log, eos_log, hydro_log)}
        assert len(digests) == 3


class TestWorklogCacheValidation:
    def test_digest_mismatch_quarantines_and_rebuilds(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        log = sod_problem_worklog(quick=True)
        path = tmp_path / "repro" / "worklogs" / "sod_problem_5.pkl"
        assert path.exists()

        # a well-formed envelope whose digest no longer matches its log
        # (schema drift that survives unpickling) must not be served
        from repro.experiments.workloads import _CACHE_VERSION
        artifacts.save_pickle(path, {"log": log, "digest": "0" * 64},
                              version=_CACHE_VERSION)
        rebuilt = sod_problem_worklog(quick=True)
        assert rebuilt.digest() == log.digest()
        assert list(path.parent.glob("*.corrupt"))
