"""Tests for the resilient run supervisor: guards, dt-retry, rotation."""

import numpy as np
import pytest

from repro.chaos import ChaosUnit
from repro.driver.config import RuntimeParameters
from repro.driver.io import read_checkpoint
from repro.driver.simulation import Simulation
from repro.driver.supervisor import (GuardViolation, RunSupervisor,
                                     StepFailure, step_guards)
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.util import artifacts
from repro.util.errors import PhysicsError


def sod_sim(*extra_units, nrefs=0, rng_seed=None):
    tree = AMRTree(ndim=1, nblockx=4, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    from repro.setups.sod import SodProblem
    SodProblem().initialize(grid, eos)
    return Simulation(grid, HydroUnit(eos, cfl=0.6), *extra_units,
                      nrefs=nrefs, rng_seed=rng_seed)


class TestStepGuards:
    def test_clean_state_passes(self):
        sim = sod_sim()
        assert step_guards(sim.grid) == []

    def test_nan_density_detected(self):
        sim = sod_sim()
        block = sim.grid.leaf_blocks()[0]
        sim.grid.interior(block, "dens")[0, 0, 0] = np.nan
        violations = step_guards(sim.grid)
        assert len(violations) == 1
        assert "dens" in violations[0]

    def test_negative_pressure_detected(self):
        sim = sod_sim()
        block = sim.grid.leaf_blocks()[-1]
        sim.grid.interior(block, "pres")[2, 0, 0] = -1.0
        assert any("pres" in v for v in step_guards(sim.grid))

    def test_nonfinite_energy_detected(self):
        sim = sod_sim()
        block = sim.grid.leaf_blocks()[0]
        sim.grid.interior(block, "ener")[1, 0, 0] = np.inf
        assert any("ener" in v for v in step_guards(sim.grid))

    def test_guard_zones_ignored(self):
        """Corruption in guard layers must not trip the interior guards."""
        sim = sod_sim()
        block = sim.grid.leaf_blocks()[0]
        sim.grid.unk[sim.grid.var("dens"), 0, 0, 0, block.slot] = np.nan
        assert step_guards(sim.grid) == []


class TestSupervisedRun:
    def test_clean_run_bit_identical_to_plain_evolve(self):
        """With no faults the supervisor is a transparent wrapper."""
        ref = sod_sim()
        ref.evolve(nend=6)
        sim = sod_sim()
        report = RunSupervisor(sim, handle_signals=False).run(nend=6)
        assert report.steps_completed == 6
        assert report.guard_trips == 0
        assert report.retries == []
        assert sim.t == ref.t
        np.testing.assert_array_equal(sim.grid.unk, ref.grid.unk)
        assert [i.dt for i in sim.history] == [i.dt for i in ref.history]

    def test_tmax_respected(self):
        sim = sod_sim()
        report = RunSupervisor(sim, handle_signals=False).run(tmax=0.02)
        assert sim.t >= 0.02
        assert report.t_final == sim.t

    def test_run_requires_a_limit(self):
        with pytest.raises(PhysicsError):
            RunSupervisor(sod_sim(), handle_signals=False).run()


class TestRetry:
    def test_guard_trip_rolls_back_and_retries(self):
        """An injected NaN costs one retry, then the run completes."""
        chaos = ChaosUnit(faults=("nan",), start=3, every=1000, seed=1)
        sim = sod_sim(chaos)
        sup = RunSupervisor(sim, handle_signals=False)
        report = sup.run(nend=6)
        assert report.steps_completed == 6
        assert report.guard_trips == 1
        assert len(report.retries) == 1
        rec = report.retries[0]
        assert rec.step == 3
        assert len(rec.rejected) == 1
        assert any("dens" in r for r in rec.rejected[0].reasons)
        # the successful retry ran at the backed-off dt
        assert rec.final_dt == pytest.approx(rec.rejected[0].dt * 0.5)
        # the fault fired exactly once: no re-injection on the retry
        assert len(chaos.injections) == 1

    def test_rollback_restores_unit_counters(self):
        """A rolled-back attempt must not leak hydro work counters."""
        ref = sod_sim()
        ref.evolve(nend=2)
        chaos = ChaosUnit(faults=("raise",), start=2, every=1000, seed=1)
        sim = sod_sim(chaos)
        RunSupervisor(sim, handle_signals=False).run(nend=2)
        # step 2 ran twice (failed + retried) but counts once
        assert (sim.unit("hydro").work.zone_sweeps
                == ref.unit("hydro").work.zone_sweeps)
        assert len(sim.history) == 2

    def test_retry_budget_exhausted_raises_stepfailure(self, tmp_path):
        sim = sod_sim()

        def always_fail(dt=None):
            raise PhysicsError("persistent corruption")

        sim.step = always_fail
        sup = RunSupervisor(sim, checkpoint_dir=tmp_path, basenm="t_",
                            max_retries=2, handle_signals=False)
        with pytest.raises(StepFailure) as exc_info:
            sup.run(nend=3)
        failure = exc_info.value
        assert failure.step == 1
        assert len(failure.attempts) == 3  # initial + 2 retries
        assert "persistent corruption" in str(failure)
        # each retry halved dt
        dts = [a.dt for a in failure.attempts]
        assert dts[1] == pytest.approx(dts[0] * 0.5)
        assert dts[2] == pytest.approx(dts[0] * 0.25)
        # the report rode along on the exception, with a resumable
        # checkpoint of the last good state
        report = failure.report
        assert report.failure is not None
        assert report.final_checkpoint is not None
        grid, t, n_step = read_checkpoint(report.final_checkpoint)
        assert n_step == 0

    def test_dt_below_floor_stops_retrying(self):
        sim = sod_sim()

        def always_fail(dt=None):
            raise PhysicsError("bad")

        sim.step = always_fail
        sup = RunSupervisor(sim, dtmin=1.0, max_retries=50,
                            handle_signals=False)
        with pytest.raises(StepFailure) as exc_info:
            sup.run(nend=1)
        # the CFL dt is far below dtmin=1.0: rejected before 50 attempts
        assert len(exc_info.value.attempts) < 50


class TestCheckpointCadence:
    def test_rotation_keeps_the_newest(self, tmp_path):
        sim = sod_sim()
        sup = RunSupervisor(sim, checkpoint_dir=tmp_path, basenm="rot_",
                            checkpoint_interval_step=1, checkpoint_keep=2,
                            handle_signals=False)
        report = sup.run(nend=5)
        kept = sorted(p.name for p in tmp_path.glob("rot_chk_*.npz"))
        assert kept == ["rot_chk_0004.npz", "rot_chk_0005.npz"]
        assert len(report.checkpoints) == 5
        # rotated-away sidecars are cleaned up too
        sidecars = list(tmp_path.glob("*.sha256"))
        assert len(sidecars) == 2

    def test_cadence_checkpoints_are_resumable(self, tmp_path):
        sim = sod_sim()
        RunSupervisor(sim, checkpoint_dir=tmp_path, basenm="c_",
                      checkpoint_interval_step=2, checkpoint_keep=3,
                      handle_signals=False).run(nend=4)
        path = tmp_path / "c_chk_0004.npz"
        assert artifacts.verify_checksum(path)
        grid, t, n_step = read_checkpoint(path)
        assert n_step == 4
        assert t == sim.t

    def test_no_dir_means_no_files(self, tmp_path):
        sim = sod_sim()
        report = RunSupervisor(sim, checkpoint_interval_step=1,
                               handle_signals=False).run(nend=3)
        assert report.checkpoints == []
        assert list(tmp_path.iterdir()) == []


class TestFromParams:
    def test_registry_defaults_flow_through(self):
        params = RuntimeParameters()
        params.set("dr_dtmin", 1.0e-9)
        params.set("dr_max_retries", 7)
        params.set("checkpoint_interval_step", 10)
        sup = RunSupervisor.from_params(sod_sim(), params,
                                        handle_signals=False)
        assert sup.dtmin == 1.0e-9
        assert sup.max_retries == 7
        assert sup.checkpoint_interval_step == 10
        assert sup.retry_factor == 0.5  # registered default

    def test_bad_param_values_rejected(self):
        params = RuntimeParameters()
        from repro.util.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            params.set("dr_dt_retry_factor", 1.5)
        with pytest.raises(ConfigurationError):
            params.set("dr_dtmin", -1.0)
        with pytest.raises(ConfigurationError):
            params.set("checkpoint_keep", 0)


class TestGuardViolation:
    def test_violation_message_lists_all(self):
        exc = GuardViolation(["a bad", "b worse"])
        assert "a bad" in str(exc) and "b worse" in str(exc)
        assert isinstance(exc, PhysicsError)
