"""Tests for runtime parameters, the Simulation driver, and checkpoint I/O."""

import numpy as np
import pytest

from repro.driver.config import RuntimeParameters
from repro.driver.io import read_checkpoint, write_checkpoint
from repro.driver.simulation import Simulation
from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import sedov_setup
from repro.setups.sod import SodProblem
from repro.util.errors import ConfigurationError, PhysicsError


class TestRuntimeParameters:
    def test_defaults(self):
        p = RuntimeParameters()
        assert p.get("cfl") == 0.4
        assert p.get("nend") == 100

    def test_parse_flash_par(self):
        text = """
        # a flash.par fragment
        basenm = "sedov_"
        nend   = 200      # steps
        cfl    = 0.8
        restart = .false.
        tmax = 5.0d-2
        """
        p = RuntimeParameters.from_par(text)
        assert p.get("basenm") == "sedov_"
        assert p.get("nend") == 200
        assert p.get("cfl") == 0.8
        assert p.get("restart") is False
        assert p.get("tmax") == pytest.approx(5.0e-2)

    def test_type_checked(self):
        with pytest.raises(ConfigurationError):
            RuntimeParameters.from_par("nend = banana")

    def test_unknown_parameter_rejected(self):
        # unknown names are declaration errors, not silently-kept knobs
        with pytest.raises(ConfigurationError, match="my_custom_knob"):
            RuntimeParameters.from_par("my_custom_knob = 3")

    def test_unknown_set_suggests_nearest(self):
        with pytest.raises(ConfigurationError, match="did you mean 'cfl'"):
            RuntimeParameters().set("cfi", 0.5)

    def test_unknown_get_raises(self):
        with pytest.raises(ConfigurationError):
            RuntimeParameters().get("nope")

    def test_unknown_get_suggests_nearest(self):
        with pytest.raises(ConfigurationError, match="did you mean 'nend'"):
            RuntimeParameters().get("nends")

    def test_choices_enforced(self):
        with pytest.raises(ConfigurationError, match="perf_engine"):
            RuntimeParameters().set("perf_engine", "warp")

    def test_set_type_checked(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            RuntimeParameters().set("nend", 1.5)

    def test_to_par_round_trips(self):
        p = RuntimeParameters()
        p.set("cfl", 0.8)
        p.set("restart", True)
        p.set("basenm", "sedov_")
        p.set("nend", 42)
        assert RuntimeParameters.from_par(p.to_par()) == p

    def test_unit_of(self):
        p = RuntimeParameters()
        assert p.unit_of("cfl") == "hydro"
        assert p.unit_of("perf_engine") == "perfmodel"
        assert p.unit_of("nend") == "driver"

    def test_malformed_line(self):
        with pytest.raises(ConfigurationError):
            RuntimeParameters.from_par("this is not an assignment")

    def test_contains(self):
        assert "cfl" in RuntimeParameters()


def sod_sim(nxb=16, max_level=1):
    tree = AMRTree(ndim=1, nblockx=2, max_level=max_level,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=nxb, nyb=1, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    return Simulation(grid, HydroUnit(eos, cfl=0.6), nrefs=0)


class TestSimulation:
    def test_evolve_nend(self):
        sim = sod_sim()
        sim.evolve(nend=5)
        assert sim.n_step == 5
        assert sim.t > 0.0
        assert len(sim.history) == 5

    def test_evolve_tmax_exact(self):
        sim = sod_sim()
        sim.evolve(tmax=0.01, nend=1000)
        assert sim.t == pytest.approx(0.01)

    def test_evolve_needs_a_limit(self):
        with pytest.raises(PhysicsError):
            sod_sim().evolve()

    def test_timers_populated(self):
        sim = sod_sim()
        sim.evolve(nend=3)
        assert sim.timers.get("evolution") > 0.0 or True  # simulated clock
        assert sim.timers.root.children["evolution"].calls == 3

    def test_step_hooks_called(self):
        sim = sod_sim()
        seen = []
        sim.step_hooks.append(lambda s, info: seen.append(info.n))
        sim.evolve(nend=4)
        assert seen == [1, 2, 3, 4]

    def test_dtinit_respected(self):
        sim = sod_sim()
        sim.dtinit = 1e-9
        info = sim.step()
        assert info.dt == pytest.approx(1e-9)

    def test_remesh_cadence(self):
        sim = sod_sim(max_level=2)
        sim.nrefs = 2
        sim.refine_var = "dens"
        sim.evolve(nend=4)
        # remesh ran on steps 2 and 4; the discontinuity must be refined
        assert any(b.level > 0 for b in sim.grid.leaf_blocks())

    def test_bad_dt_rejected(self):
        sim = sod_sim()
        with pytest.raises(PhysicsError):
            sim.step(dt=-1.0)


class TestCheckpointIO:
    def test_round_trip(self, tmp_path):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=2,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        refine_block(grid, BlockId(0, 1, 1))
        rng = np.random.default_rng(0)
        for b in grid.leaf_blocks():
            grid.interior(b, "dens")[:] = rng.random(
                grid.interior(b, "dens").shape)
        path = write_checkpoint(grid, tmp_path / "chk.npz", time=1.5, n_step=42)
        grid2, t, n = read_checkpoint(path)
        assert t == 1.5 and n == 42
        assert grid2.tree.n_leaves == grid.tree.n_leaves
        for b in grid.tree.leaves():
            np.testing.assert_array_equal(
                grid2.interior(b, "dens"), grid.interior(b, "dens"))

    def test_variables_preserved(self, tmp_path):
        from repro.mesh.grid import VariableRegistry

        tree = AMRTree(ndim=1, nblockx=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=8, nyb=1, nzb=1, nguard=2, maxblocks=8)
        grid = Grid(tree, spec, VariableRegistry().extended("fl01"))
        path = write_checkpoint(grid, tmp_path / "c.npz")
        grid2, _, _ = read_checkpoint(path)
        assert "fl01" in grid2.variables
