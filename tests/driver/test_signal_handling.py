"""Graceful shutdown: a SIGTERM'd run must finish its in-flight step,
write a final checkpoint, and exit cleanly — the cluster-preemption
contract the supervisor exists for."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.driver.io import read_checkpoint, restart_simulation
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit

REPO = Path(__file__).resolve().parents[2]


def _spawn_soak(out_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_SOAK_STEPS"] = "5000"   # far more than we let it run
    env["REPRO_SOAK_FAULTS"] = "none"  # the signal comes from *us*
    env["REPRO_SOAK_OUT"] = str(out_dir)
    # -u: unbuffered stdout, so the parent sees step lines through the pipe
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.chaos.soak"],
        env=env, cwd=REPO, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)


def _wait_for_steps(proc, deadline=60.0):
    """Block until the child reports it is mid-run (a step line)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        line = proc.stdout.readline()
        if not line:
            pytest.fail("soak subprocess exited before stepping:\n"
                        + (proc.stdout.read() or ""))
        if line.lstrip().startswith("step ") and "dt=" in line:
            return line
    pytest.fail("soak subprocess produced no step line in time")


class TestSigtermShutdown:
    def test_sigterm_yields_clean_exit_and_valid_checkpoint(self, tmp_path):
        proc = _spawn_soak(tmp_path)
        try:
            _wait_for_steps(proc)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # clean exit: the handler converted the signal into a normal
        # end-of-run, not a KeyboardInterrupt traceback or a 143
        assert proc.returncode == 0, out
        assert "Traceback" not in out

        report = json.loads((tmp_path / "RUN_REPORT.json").read_text())
        last = report["runs"][-1]
        assert last["interrupted"] == "SIGTERM"
        assert last["failure"] is None
        final = last["final_checkpoint"]
        assert final is not None

        # the final checkpoint is complete, verified, and resumable
        grid, t, n_step = read_checkpoint(final)
        assert n_step == last["steps_completed"] > 0
        resumed = restart_simulation(
            final, HydroUnit(GammaLawEOS(gamma=1.4), cfl=0.6),
            nrefs=4, refine_var="pres", refine_cutoff=0.6,
            derefine_cutoff=0.1)
        resumed.evolve(nend=resumed.n_step + 2)
        assert resumed.n_step == n_step + 2

        # an externally delivered signal must NOT auto-resume: that would
        # fight the scheduler that asked us to stop
        assert report["resumes"] == 0
        assert report["steps_completed"] < report["steps_requested"]
