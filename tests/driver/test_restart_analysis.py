"""Tests for checkpoint-restart continuation and the analysis utilities."""

import numpy as np
import pytest

from repro.analysis.profiles import (
    line_profile,
    peak_location,
    radial_profile,
    scatter_variable,
)
from repro.driver.io import restart_simulation, write_checkpoint
from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_pass
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import sedov_setup
from repro.setups.sod import SodProblem


def sod_sim(nrefs=0, max_level=1):
    tree = AMRTree(ndim=1, nblockx=4, max_level=max_level,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    return Simulation(grid, HydroUnit(eos, cfl=0.6), nrefs=nrefs), eos


class TestRestart:
    def test_bitwise_continuation(self, tmp_path):
        """run 8 steps straight == run 5, checkpoint, restart, run 3."""
        ref, _ = sod_sim()
        ref.evolve(nend=8)

        sim, eos = sod_sim()
        sim.evolve(nend=5)
        path = write_checkpoint(sim.grid, tmp_path / "chk.npz",
                                time=sim.t, n_step=sim.n_step)

        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6), nrefs=0)
        assert resumed.n_step == 5
        assert resumed.t == pytest.approx(sim.t)
        resumed.evolve(nend=8)

        assert resumed.t == pytest.approx(ref.t, rel=1e-14)
        for bid in ref.grid.tree.leaves():
            np.testing.assert_array_equal(
                resumed.grid.interior(bid, "dens"),
                ref.grid.interior(bid, "dens"))
            np.testing.assert_array_equal(
                resumed.grid.interior(bid, "velx"),
                ref.grid.interior(bid, "velx"))

    def test_restart_2d_with_amr_topology(self, tmp_path):
        """A refined 2-d mesh restarts with the same tree and data."""
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=2,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4,
                        maxblocks=128)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.0))
        refine_pass(grid, "pres", refine_cutoff=0.6, derefine_cutoff=0.1)
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.0))
        sim = Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=0, dtinit=1e-5)
        sim.evolve(nend=3)
        path = write_checkpoint(grid, tmp_path / "c.npz", time=sim.t,
                                n_step=sim.n_step)
        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.4), nrefs=0)
        assert resumed.grid.tree.n_leaves == grid.tree.n_leaves
        resumed.step()
        assert resumed.n_step == 4


class TestAnalysis:
    @pytest.fixture(scope="class")
    def blast(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4,
                        maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.0))
        sim = Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=0, dtinit=1e-5)
        sim.evolve(nend=15)
        return grid

    def test_scatter_covers_all_zones(self, blast):
        x, y, z, vals, vols = scatter_variable(blast, "dens")
        assert x.size == blast.tree.n_leaves * 256
        assert vols.sum() == pytest.approx(1.0)  # total domain area

    def test_radial_profile_monotone_bins(self, blast):
        r, d = radial_profile(blast, "dens", center=(0.5, 0.5, 0.0),
                              n_bins=16)
        assert r.shape == d.shape == (16,)
        assert (np.diff(r) > 0).all()
        assert np.nanmax(d) > 1.0  # the shock's compression shows up

    def test_peak_location_finds_shock(self, blast):
        r_peak, d_peak = peak_location(blast, "dens", center=(0.5, 0.5, 0.0))
        assert 0.0 < r_peak < 0.75
        assert d_peak > 1.0

    def test_line_profile_sorted(self, blast):
        x, d = line_profile(blast, "dens", axis=0)
        assert (np.diff(x) >= 0).all()
        assert d.size == x.size

    def test_mass_from_scatter_matches_grid_total(self, blast):
        x, y, z, dens, vols = scatter_variable(blast, "dens")
        assert (dens * vols).sum() == pytest.approx(
            blast.total("dens", weight=None), rel=1e-12)
