"""Regression tests: an interrupted-and-resumed run must be
indistinguishable from an uninterrupted one.

The original restart path restored only the mesh, time, and step count:
the hydro unit's cumulative work counters, the PAPI counter bank, the
driver RNG, and — worst — the WorkLog delta baseline all restarted from
zero, so a WorkLog attached after a restart folded the *entire
pre-restart* EOS work into its first recorded step.  These tests pin the
fixed behaviour.
"""

import numpy as np
import pytest

from repro.driver.io import (read_run_state, restart_simulation,
                             write_checkpoint)
from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.papi.events import Event
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem


def sod_sim(rng_seed=None):
    tree = AMRTree(ndim=1, nblockx=4, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    return Simulation(grid, HydroUnit(eos, cfl=0.6), nrefs=0,
                      rng_seed=rng_seed), eos


class TestWorkCounterContinuity:
    def test_hydro_work_counters_survive_restart(self, tmp_path):
        """Cumulative unit work after 5+3 steps == after 8 straight."""
        ref, _ = sod_sim()
        ref.evolve(nend=8)

        sim, eos = sod_sim()
        sim.evolve(nend=5)
        path = write_checkpoint(sim.grid, tmp_path / "chk.npz", sim=sim)

        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6), nrefs=0)
        resumed.evolve(nend=8)

        ref_work = ref.unit("hydro").work
        res_work = resumed.unit("hydro").work
        assert res_work.zone_sweeps == ref_work.zone_sweeps
        assert res_work.guardcell_fills == ref_work.guardcell_fills
        assert res_work.eos.calls == ref_work.eos.calls
        assert res_work.eos.zones == ref_work.eos.zones
        # and the resumed mesh state is still bitwise identical
        np.testing.assert_array_equal(
            resumed.grid.interior(ref.grid.leaf_blocks()[0].bid, "dens"),
            ref.grid.interior(ref.grid.leaf_blocks()[0].bid, "dens"))

    def test_counter_bank_survives_restart(self, tmp_path):
        sim, eos = sod_sim()
        sim.evolve(nend=4)
        sim.bank.totals[Event.TOT_CYC] = 1234.5
        path = write_checkpoint(sim.grid, tmp_path / "chk.npz", sim=sim)
        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6), nrefs=0)
        assert resumed.bank.totals[Event.TOT_CYC] == 1234.5
        assert resumed.bank.time_s == sim.bank.time_s

    def test_rng_state_survives_restart(self, tmp_path):
        """A resumed run's driver RNG continues the original stream."""
        ref, _ = sod_sim(rng_seed=11)
        ref.evolve(nend=3)
        expected = ref.rng.random(4)

        sim, eos = sod_sim(rng_seed=11)
        sim.evolve(nend=3)
        path = write_checkpoint(sim.grid, tmp_path / "chk.npz", sim=sim)
        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6),
                                     nrefs=0, rng_seed=11)
        np.testing.assert_array_equal(resumed.rng.random(4), expected)

    def test_legacy_checkpoint_still_restarts(self, tmp_path):
        """Checkpoints written without ``sim=`` carry no run state but
        must keep restarting (sweep parity derived from n_step)."""
        sim, eos = sod_sim()
        sim.evolve(nend=5)
        path = write_checkpoint(sim.grid, tmp_path / "legacy.npz",
                                time=sim.t, n_step=sim.n_step)
        assert read_run_state(path) == {}
        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6), nrefs=0)
        assert resumed.unit("hydro")._parity == 5
        resumed.evolve(nend=6)
        assert resumed.n_step == 6


class TestWorkLogContinuity:
    def test_attach_baselines_at_current_counters(self, tmp_path):
        """The satellite regression: a WorkLog attached to a restarted
        simulation must record only post-restart deltas — its records
        must equal the tail of an uninterrupted run's log."""
        ref, _ = sod_sim()
        ref_log = WorkLog.attach(ref, helmholtz_eos=False)
        ref.evolve(nend=8)

        sim, eos = sod_sim()
        sim.evolve(nend=5)
        path = write_checkpoint(sim.grid, tmp_path / "chk.npz", sim=sim)
        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6), nrefs=0)
        resumed_log = WorkLog.attach(resumed, helmholtz_eos=False)
        resumed.evolve(nend=8)

        assert resumed_log.n_steps == 3
        for rec, ref_rec in zip(resumed_log.steps, ref_log.steps[5:]):
            assert rec.n == ref_rec.n
            assert rec.dt == ref_rec.dt
            assert rec.slots == ref_rec.slots
            assert rec.invocations == ref_rec.invocations

    def test_attach_after_restart_sees_no_prerestart_eos_work(self,
                                                              tmp_path):
        """Before the fix the delta baseline was zero, so the first
        post-restart record inherited all pre-restart EOS calls."""
        sim, eos = sod_sim()
        sim.evolve(nend=5)
        pre_restart_calls = sim.unit("hydro").work.eos.calls
        assert pre_restart_calls > 0
        path = write_checkpoint(sim.grid, tmp_path / "chk.npz", sim=sim)

        resumed = restart_simulation(path, HydroUnit(eos, cfl=0.6), nrefs=0)
        # the restored cumulative counters are non-zero...
        assert resumed.unit("hydro").work.eos.calls == pre_restart_calls
        captured = {}
        original = WorkLog.record_step

        def spy(self, sim_, info, eos_calls, eos_iters, **kw):
            captured.setdefault("calls", eos_calls)
            return original(self, sim_, info, eos_calls, eos_iters, **kw)

        WorkLog.record_step = spy
        try:
            log = WorkLog.attach(resumed, helmholtz_eos=False)
            resumed.step()
        finally:
            WorkLog.record_step = original
        # ...but the first recorded delta covers one step only (one EOS
        # call per directional sweep)
        assert captured["calls"] == 1
        assert log.n_steps == 1


class TestHelmholtzIterationContinuity:
    @pytest.mark.slow
    def test_newton_iteration_deltas_continue(self, tmp_path):
        """With a Helmholtz EOS (data-dependent Newton iterations) the
        resumed log's recorded iteration densities match the tail of an
        uninterrupted run — the counters that actually drove the paper's
        EOS cost model."""
        from repro.setups.supernova import supernova_setup

        def build():
            prob = supernova_setup(nblock=2, nxb=16, max_level=1,
                                   maxblocks=256)
            return prob, Simulation(prob.grid, prob.hydro, prob.flame,
                                    prob.gravity, nrefs=4)

        _, ref = build()
        ref_log = WorkLog.attach(ref, helmholtz_eos=True)
        ref.evolve(nend=4)
        assert ref.unit("hydro").work.eos.newton_iterations > 0

        _, sim = build()
        sim.evolve(nend=2)
        path = write_checkpoint(sim.grid, tmp_path / "sn.npz", sim=sim)

        prob, _ = build()
        resumed = restart_simulation(path, prob.hydro, prob.flame,
                                     prob.gravity, nrefs=4)
        resumed_log = WorkLog.attach(resumed, helmholtz_eos=True)
        resumed.evolve(nend=4)

        assert resumed_log.n_steps == 2
        for rec, ref_rec in zip(resumed_log.steps, ref_log.steps[2:]):
            assert rec.invocations == ref_rec.invocations
            assert rec.dt == ref_rec.dt
