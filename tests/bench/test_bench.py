"""Tests for the repro.bench CLI and its regression gate."""

import json

import pytest

import repro.bench.cli as cli
from repro.bench import SCHEMA, compare_bench, load_baseline, main


def _doc(speedup=4.0, cyc=100.0, l1=50, wall=1.0):
    run = {
        "problem": "eos", "replication": 2, "flags": [],
        "engines": {"fast": {"wall_s": wall, "steps_per_s": 8 / wall},
                    "scalar": {"wall_s": wall * speedup,
                               "steps_per_s": 8 / (wall * speedup)}},
        "counters": {"PAPI_TOT_CYC": cyc},
        "dtlb": {"l1_misses": l1, "l2_misses": 5},
        "counters_equal": True,
        "speedup": speedup,
    }
    return {"schema": SCHEMA, "name": "eos", "quick": True,
            "engines": ["fast", "scalar"], "environment": {},
            "runs": [run],
            "summary": {"n_runs": 1, "all_counters_equal": True,
                        "speedup": speedup, "min_speedup": speedup,
                        "max_speedup": speedup}}


class TestCompare:
    def test_identical_docs_pass(self):
        assert compare_bench(_doc(), _doc()) == []

    def test_speedup_regression_fails(self):
        failures = compare_bench(_doc(speedup=2.0), _doc(speedup=4.0),
                                 threshold=0.2)
        assert any("speedup regressed" in f for f in failures)

    def test_speedup_within_threshold_passes(self):
        assert compare_bench(_doc(speedup=3.5), _doc(speedup=4.0),
                             threshold=0.2) == []

    def test_counter_drift_fails(self):
        failures = compare_bench(_doc(cyc=101.0), _doc(cyc=100.0))
        assert any("PAPI_TOT_CYC drifted" in f for f in failures)

    def test_dtlb_drift_fails(self):
        failures = compare_bench(_doc(l1=51), _doc(l1=50))
        assert any("dtlb l1_misses" in f for f in failures)

    def test_wall_regression_only_under_strict(self):
        slow, base = _doc(wall=2.0), _doc(wall=1.0)
        assert compare_bench(slow, base) == []
        failures = compare_bench(slow, base, strict_wall=True)
        assert any("wall" in f for f in failures)

    def test_schema_mismatch_fails(self):
        other = _doc()
        other["schema"] = "repro.bench/0"
        failures = compare_bench(_doc(), other)
        assert any("schema mismatch" in f for f in failures)

    def test_new_configuration_ignored(self):
        cur = _doc()
        cur["runs"][0]["replication"] = 8  # not in the baseline
        assert compare_bench(cur, _doc()) == []


def _report_doc(*, cores=4, jobs=2, speedup_jobs=1.9, text_jobs=True,
                replays_jobs=8, batch_identical=True, speedup_batch=3.0,
                wall_jobs=0.5):
    return {
        "schema": SCHEMA, "name": "report", "quick": True,
        "engines": ["fast"],
        "environment": {"cpu_count": cores, "jobs": jobs},
        "runs": [],
        "session": {
            "wall_unshared_s": 2.0, "wall_cold_s": 1.0, "wall_warm_s": 0.5,
            "configs": 22, "replays_unshared": 22, "replays_cold": 8,
            "replays_warm": 0, "disk_hits_warm": 8,
            "speedup_cold": 2.0, "speedup_warm": 4.0,
            "text_sha256": "abc", "text_identical": True,
            "jobs": jobs, "wall_cold_jobs_s": wall_jobs,
            "replays_cold_jobs": replays_jobs, "executor_fallbacks": 0,
            "speedup_jobs": speedup_jobs, "text_identical_jobs": text_jobs,
        },
        "geometry": {
            "l1_entries": [8, 16, 32, 64],
            "wall_batched_s": 1.0, "wall_serial_s": speedup_batch,
            "speedup_batch": speedup_batch,
            "batch_identical": batch_identical,
        },
        "summary": {"n_runs": 4, "replays_cold": 8, "replays_warm": 0,
                    "speedup_warm": 4.0, "text_identical": True,
                    "jobs": jobs, "speedup_jobs": speedup_jobs,
                    "text_identical_jobs": text_jobs,
                    "speedup_batch": speedup_batch,
                    "batch_identical": batch_identical},
    }


class TestCompareReportV2:
    def test_identical_report_docs_pass(self):
        assert compare_bench(_report_doc(), _report_doc()) == []

    def test_executor_text_divergence_fails(self):
        failures = compare_bench(_report_doc(text_jobs=False), _report_doc())
        assert any("under the process-pool executor" in f for f in failures)

    def test_executor_replay_count_must_match_serial(self):
        failures = compare_bench(_report_doc(replays_jobs=9), _report_doc())
        assert any("as-if-sequential" in f for f in failures)

    def test_geometry_batch_divergence_fails(self):
        failures = compare_bench(_report_doc(batch_identical=False),
                                 _report_doc())
        assert any("diverged from the serial" in f for f in failures)

    def test_geometry_batch_speedup_regression_fails(self):
        failures = compare_bench(_report_doc(speedup_batch=1.1),
                                 _report_doc(speedup_batch=3.0),
                                 threshold=0.2)
        assert any("geometry batch speedup regressed" in f for f in failures)

    def test_jobs_speedup_gated_on_multicore_hosts(self):
        failures = compare_bench(_report_doc(cores=8, speedup_jobs=1.0),
                                 _report_doc(cores=8))
        assert any("executor speedup" in f for f in failures)

    def test_jobs_speedup_skipped_on_small_hosts(self):
        notes = []
        failures = compare_bench(_report_doc(cores=1, speedup_jobs=0.9),
                                 _report_doc(cores=1), notes=notes)
        assert failures == []
        assert any("not gated" in n for n in notes)

    def test_env_mismatch_skips_strict_wall(self):
        notes = []
        slow = _report_doc(cores=1, jobs=1, wall_jobs=9.0, speedup_jobs=None)
        slow["session"]["wall_cold_s"] = 9.0
        failures = compare_bench(slow, _report_doc(cores=8),
                                 strict_wall=True, notes=notes)
        assert failures == []
        assert any("wall-clock gates skipped" in n for n in notes)

    def test_matching_env_gates_strict_wall(self):
        slow = _report_doc()
        slow["session"]["wall_cold_jobs_s"] = 9.0
        failures = compare_bench(slow, _report_doc(), strict_wall=True)
        assert any("wall_cold_jobs_s" in f for f in failures)


class TestLoadBaseline:
    def test_from_directory(self, tmp_path):
        (tmp_path / "BENCH_eos.json").write_text(json.dumps(_doc()))
        assert load_baseline(tmp_path, "eos")["name"] == "eos"
        assert load_baseline(tmp_path, "hydro") is None

    def test_from_file_checks_name(self, tmp_path):
        path = tmp_path / "BENCH_eos.json"
        path.write_text(json.dumps(_doc()))
        assert load_baseline(path, "eos") is not None
        assert load_baseline(path, "hydro") is None


class TestCliSmoke:
    @pytest.fixture(autouse=True)
    def tiny_scales(self, monkeypatch):
        monkeypatch.setitem(cli._SCALES, "quick", (1,))

    def test_emits_valid_document(self, tmp_path):
        rc = main(["--quick", "--out", str(tmp_path),
                   "--problems", "eos", "--engine", "fast"])
        assert rc == 0
        doc = json.loads((tmp_path / "BENCH_eos.json").read_text())
        assert doc["schema"] == SCHEMA
        assert doc["runs"] and doc["summary"]["n_runs"] == len(doc["runs"])
        for run in doc["runs"]:
            assert run["engines"]["fast"]["wall_s"] > 0
            assert run["counters"]["PAPI_TOT_CYC"] > 0
            assert run["dtlb"]["l1_misses"] >= 0

    def test_compare_against_self_passes(self, tmp_path):
        rc = main(["--quick", "--out", str(tmp_path),
                   "--problems", "eos", "--engine", "fast"])
        assert rc == 0
        rc = main(["--quick", "--out", str(tmp_path / "second"),
                   "--problems", "eos", "--engine", "fast",
                   "--compare", str(tmp_path)])
        assert rc == 0

    def test_missing_baseline_fails(self, tmp_path):
        rc = main(["--quick", "--out", str(tmp_path),
                   "--problems", "eos", "--engine", "fast",
                   "--compare", str(tmp_path / "nowhere")])
        assert rc == 1


def _resilience_doc(ff=True, rec=True, restarts=1, replayed=2):
    return {"schema": SCHEMA, "name": "resilience", "quick": True,
            "engines": [], "environment": {}, "runs": [],
            "resilience": {
                "wall_s": 1.0, "steps": 6, "kill_step": 4,
                "points": {"2x1": {
                    "n_ranks": 2, "checkpoint_interval": 1,
                    "faultfree_identical": ff,
                    "recovered_identical": rec,
                    "rank_restarts": restarts,
                    "replayed_steps": replayed,
                    "checkpoint_overhead_pct": 5.0,
                    "recovery_wall_ms": 3.0}},
                "text_sha256": "0" * 64},
            "summary": {"n_runs": 4, "all_identical": ff and rec,
                        "rank_restarts": restarts}}


class TestCompareResilience:
    def test_identical_docs_pass(self):
        assert compare_bench(_resilience_doc(), _resilience_doc()) == []

    def test_identity_booleans_always_gate(self):
        failures = compare_bench(_resilience_doc(rec=False),
                                 _resilience_doc())
        assert any("recovered identical" in f for f in failures)
        failures = compare_bench(_resilience_doc(ff=False),
                                 _resilience_doc())
        assert any("faultfree identical" in f for f in failures)

    def test_recovery_accounting_gates_exactly(self):
        failures = compare_bench(_resilience_doc(restarts=2),
                                 _resilience_doc(restarts=1))
        assert any("rank_restarts changed 1 -> 2" in f for f in failures)
        failures = compare_bench(_resilience_doc(replayed=3),
                                 _resilience_doc(replayed=2))
        assert any("replayed_steps" in f for f in failures)

    def test_walls_never_gate(self):
        fast = _resilience_doc()
        slow = _resilience_doc()
        slow["resilience"]["points"]["2x1"]["recovery_wall_ms"] = 900.0
        slow["resilience"]["points"]["2x1"]["checkpoint_overhead_pct"] = 80.0
        assert compare_bench(slow, fast) == []
        assert compare_bench(slow, fast, strict_wall=True) == []
