"""Tests for /proc/meminfo rendering — the paper's monitoring method."""

import numpy as np

from repro.util import GiB, KiB, MiB
from repro.kernel.params import ookami_config
from repro.kernel.meminfo import hugepages_in_use, meminfo, render_meminfo
from repro.kernel.vmm import Kernel


def test_idle_kernel_fields():
    k = Kernel(ookami_config())
    info = meminfo(k)
    assert info["MemTotal"] == 32 * GiB // KiB
    assert info["AnonHugePages"] == 0
    assert info["HugePages_Total"] == 0
    assert info["Hugepagesize"] == 2 * MiB // KiB
    assert not hugepages_in_use(k)


def test_anonhugepages_reflects_thp():
    from repro.kernel.thp import THPMode

    k = Kernel(ookami_config(thp_mode=THPMode.ALWAYS))
    s = k.new_address_space()
    vma = s.mmap(2 * GiB)
    s.touch_range(vma, 0, vma.length)
    info = meminfo(k)
    assert info["AnonHugePages"] * KiB == vma.thp_bytes
    assert info["AnonPages"] * KiB == vma.resident_bytes
    assert hugepages_in_use(k)


def test_hugetlb_fields_reflect_pool():
    k = Kernel(ookami_config())
    k.pool(2 * MiB).set_pool_size(100)
    s = k.new_address_space()
    vma = s.mmap(20 * MiB, hugetlb_size=2 * MiB)
    s.touch_range(vma, 0, 10 * MiB)
    info = meminfo(k)
    assert info["HugePages_Total"] == 100
    assert info["HugePages_Free"] == 95
    assert info["HugePages_Rsvd"] == 5
    assert info["Hugetlb"] == 100 * 2 * MiB // KiB
    assert hugepages_in_use(k)


def test_memfree_accounts_for_pool_carveout():
    k = Kernel(ookami_config())
    before = meminfo(k)["MemFree"]
    k.pool(2 * MiB).set_pool_size(512)  # 1 GiB carved out
    after = meminfo(k)["MemFree"]
    assert before - after == 1 * GiB // KiB


def test_render_format():
    k = Kernel(ookami_config())
    text = render_meminfo(k)
    assert "AnonHugePages:" in text
    assert "HugePages_Total:" in text
    # counts carry no kB suffix; sizes do
    for line in text.splitlines():
        if line.startswith("HugePages_"):
            assert not line.endswith("kB")
        if line.startswith("Hugepagesize"):
            assert line.endswith("kB")


def test_monitoring_distinguishes_mechanisms():
    """The paper watched both AnonHugePages (THP) and HugePages_* (hugetlbfs)."""
    from repro.kernel.thp import THPMode

    k = Kernel(ookami_config(thp_mode=THPMode.ALWAYS))
    k.pool(2 * MiB).set_pool_size(50)
    s = k.new_address_space()
    v_thp = s.mmap(1 * GiB)
    s.touch_range(v_thp, 0, v_thp.length)
    v_huge = s.mmap(10 * MiB, hugetlb_size=2 * MiB)
    s.touch_range(v_huge, 0, v_huge.length)
    info = meminfo(k)
    assert info["AnonHugePages"] * KiB == v_thp.thp_bytes
    assert info["HugePages_Free"] == 45
