"""Tests for the VMM: faulting, THP promotion, translation, khugepaged.

These encode the mechanism behind the paper's observations (DESIGN.md §5):
on the 64 KiB-granule Ookami kernel the THP granule is 512 MiB, so
FLASH-sized (~100 MB) anonymous mappings never receive transparent huge
pages while multi-GiB mappings do.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util import GiB, KiB, MiB
from repro.util.errors import AllocationError, KernelError
from repro.kernel.page import AARCH64_64K, X86_64_4K
from repro.kernel.params import BootParams, KernelConfig, ookami_config
from repro.kernel.thp import THPMode
from repro.kernel.vmm import Kernel, MapFlags


@pytest.fixture
def kernel():
    # a modified node after `echo always > .../transparent_hugepage/enabled`
    return Kernel(ookami_config(thp_mode=THPMode.ALWAYS))


@pytest.fixture
def space(kernel):
    return kernel.new_address_space()


class TestMmap:
    def test_mmap_rounds_to_base_page(self, space):
        vma = space.mmap(100)
        assert vma.length == 64 * KiB

    def test_mmap_hugetlb_rounds_to_huge_page(self, kernel, space):
        kernel.pool(2 * MiB).set_pool_size(64)
        vma = space.mmap(3 * MiB, hugetlb_size=2 * MiB)
        assert vma.length == 4 * MiB
        assert kernel.pool(2 * MiB).reserved == 2

    def test_mmap_hugetlb_empty_pool_enomem(self, space):
        with pytest.raises(AllocationError):
            space.mmap(2 * MiB, hugetlb_size=2 * MiB)

    def test_mappings_do_not_overlap(self, space):
        vmas = [space.mmap(1 * MiB) for _ in range(10)]
        spans = sorted((v.start, v.end) for v in vmas)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_munmap_releases_memory(self, kernel, space):
        vma = space.mmap(10 * MiB)
        space.touch_range(vma, 0, vma.length)
        used = kernel.anon_base_bytes
        assert used > 0
        space.munmap(vma)
        assert kernel.anon_base_bytes == 0

    def test_munmap_unknown_vma_raises(self, kernel, space):
        other = kernel.new_address_space()
        vma = other.mmap(1 * MiB)
        with pytest.raises(KernelError):
            space.munmap(vma)

    def test_zero_length_rejected(self, space):
        with pytest.raises(KernelError):
            space.mmap(0)


class TestFaulting:
    def test_touch_populates_base_pages(self, space):
        vma = space.mmap(1 * MiB)
        space.touch(vma, np.array([0, 64 * KiB, 2 * 64 * KiB]))
        assert vma.base_bytes == 3 * 64 * KiB

    def test_repeated_touch_idempotent(self, space):
        vma = space.mmap(1 * MiB)
        space.touch_range(vma, 0, vma.length)
        before = vma.base_bytes
        space.touch_range(vma, 0, vma.length)
        assert vma.base_bytes == before

    def test_touch_outside_vma_raises(self, space):
        vma = space.mmap(1 * MiB)
        with pytest.raises(KernelError):
            space.touch(vma, np.array([vma.length]))

    def test_hugetlb_fault_consumes_pool(self, kernel, space):
        kernel.pool(2 * MiB).set_pool_size(16)
        vma = space.mmap(8 * MiB, hugetlb_size=2 * MiB)
        space.touch_range(vma, 0, 4 * MiB)
        pool = kernel.pool(2 * MiB)
        assert pool.allocated == 2
        assert pool.reserved == 2

    def test_out_of_memory(self):
        cfg = KernelConfig(mem_total=3 * GiB, os_reserved=2 * GiB)
        k = Kernel(cfg)
        s = k.new_address_space()
        vma = s.mmap(2 * GiB)  # mapping ok, faulting it isn't
        with pytest.raises(AllocationError):
            s.touch_range(vma, 0, vma.length)


class TestTHPPromotion:
    """The paper's mystery, mechanised."""

    def test_flash_sized_mapping_gets_no_thp(self, space):
        """~100 MB `unk` cannot contain a 512 MiB-aligned PMD extent."""
        vma = space.mmap(100 * MiB, name="unk")
        space.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes == 0
        assert vma.base_bytes == 100 * MiB

    def test_multi_gib_mapping_gets_thp(self, space):
        """The paper's dynamically allocating toy program (big array)."""
        vma = space.mmap(2 * GiB, name="toy")
        space.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes >= 512 * MiB
        assert vma.uses_huge_pages()

    def test_image_segment_never_thp(self, space):
        """The statically allocating toy program: data/BSS is file-backed."""
        vma = space.map_image(2 * GiB, name="static_test")
        space.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes == 0

    def test_x86_geometry_would_have_promoted(self):
        """Contrast: with 4 KiB granule (2 MiB THP) FLASH *would* huge-page —
        localising the mystery to the 64 KiB-granule kernel."""
        cfg = KernelConfig(geometry=X86_64_4K,
                           boot=BootParams(hugepagesz=(2 * MiB,),
                                           default_hugepagesz=2 * MiB))
        k = Kernel(cfg)
        s = k.new_address_space()
        vma = s.mmap(100 * MiB, name="unk")
        s.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes >= 96 * MiB

    def test_thp_never_blocks_promotion(self):
        k = Kernel(ookami_config(thp_mode=THPMode.NEVER))
        s = k.new_address_space()
        vma = s.mmap(2 * GiB)
        s.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes == 0

    def test_thp_madvise_requires_hint(self):
        k = Kernel(ookami_config(thp_mode=THPMode.MADVISE))
        s = k.new_address_space()
        vma = s.mmap(2 * GiB)
        s.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes == 0
        vma2 = s.mmap(2 * GiB)
        s.madvise(vma2, "MADV_HUGEPAGE")
        s.touch_range(vma2, 0, vma2.length)
        assert vma2.thp_bytes > 0

    def test_echo_never_at_runtime(self, kernel, space):
        """The admins' echo never > .../enabled blocks later promotions."""
        kernel.write_sysfs_thp_enabled("never")
        vma = space.mmap(2 * GiB)
        space.touch_range(vma, 0, vma.length)
        assert vma.thp_bytes == 0

    def test_single_touch_promotes_empty_extent(self, space):
        """A fault anywhere in an empty, contained extent installs a huge
        page immediately — the fault path doesn't wait for more touches."""
        vma = space.mmap(2 * GiB)
        space.touch(vma, np.array([512 * MiB + 64 * KiB], dtype=np.int64))
        assert vma.thp_bytes == 512 * MiB

    def test_partial_population_blocks_later_promotion(self, kernel, space):
        """An extent that already has base pages is no longer pmd_none, so
        re-enabling THP later cannot huge-page it on the fault path."""
        vma = space.mmap(2 * GiB)
        kernel.write_sysfs_thp_enabled("never")
        # dirty one base page inside the second extent while THP is off...
        space.touch(vma, np.array([512 * MiB + 64 * KiB], dtype=np.int64))
        kernel.write_sysfs_thp_enabled("always")
        # ...then sweep everything
        space.touch_range(vma, 0, vma.length)
        ext = 512 * MiB
        n_contained = (vma.length // ext) - (0 if vma.start % ext == 0 else 1)
        assert vma.thp_bytes < n_contained * ext
        assert vma.thp_bytes >= ext  # but others did promote

    def test_fault_counters(self, kernel, space):
        vma = space.mmap(2 * GiB)
        space.touch_range(vma, 0, vma.length)
        assert kernel.thp.thp_fault_alloc == vma.thp_bytes // (512 * MiB)


class TestTranslate:
    def test_translate_base_pages(self, space):
        vma = space.mmap(1 * MiB)
        space.touch_range(vma, 0, vma.length)
        base, size = space.translate(vma, np.array([0, 64 * KiB + 5]))
        assert (size == 64 * KiB).all()
        assert base[0] == vma.start
        assert base[1] == vma.start + 64 * KiB

    def test_translate_mixed_thp(self, space):
        vma = space.mmap(2 * GiB)
        space.touch_range(vma, 0, vma.length)
        offs = np.arange(0, vma.length, 32 * MiB, dtype=np.int64)
        base, size = space.translate(vma, offs)
        assert set(np.unique(size)) <= {64 * KiB, 512 * MiB}
        assert (512 * MiB == size).any()

    def test_translate_hugetlb(self, kernel, space):
        kernel.pool(2 * MiB).set_pool_size(64)
        vma = space.mmap(8 * MiB, hugetlb_size=2 * MiB)
        base, size = space.translate(vma, np.array([0, 3 * MiB]))
        assert (size == 2 * MiB).all()
        assert base[1] == vma.start + 2 * MiB

    @given(off=st.integers(min_value=0, max_value=8 * MiB - 1))
    @settings(max_examples=50)
    def test_translate_contains_address(self, off):
        k = Kernel(ookami_config())
        s = k.new_address_space()
        vma = s.mmap(8 * MiB)
        base, size = s.translate(vma, np.array([off]))
        va = vma.start + off
        assert base[0] <= va < base[0] + size[0]
        assert base[0] % size[0] == 0


class TestKhugepaged:
    def test_collapse_partially_populated_extent(self, kernel, space):
        vma = space.mmap(2 * GiB)
        # dirty every extent with THP off so the fault path can never promote
        ext = 512 * MiB
        kernel.write_sysfs_thp_enabled("never")
        probes = np.arange(64 * KiB, vma.length, ext, dtype=np.int64)
        space.touch(vma, probes)
        space.touch_range(vma, 0, vma.length)
        kernel.write_sysfs_thp_enabled("always")
        assert vma.thp_bytes == 0
        n = space.khugepaged_scan()
        assert n > 0
        assert vma.thp_bytes == n * ext
        assert kernel.thp.thp_collapse_alloc == n

    def test_collapse_respects_budget(self, kernel, space):
        vma = space.mmap(2 * GiB)
        kernel.write_sysfs_thp_enabled("never")
        probes = np.arange(64 * KiB, vma.length, 512 * MiB, dtype=np.int64)
        space.touch(vma, probes)
        space.touch_range(vma, 0, vma.length)
        kernel.write_sysfs_thp_enabled("always")
        assert space.khugepaged_scan(max_extents=1) == 1

    def test_collapse_memory_accounting_consistent(self, kernel, space):
        vma = space.mmap(2 * GiB)
        kernel.write_sysfs_thp_enabled("never")
        probes = np.arange(64 * KiB, vma.length, 512 * MiB, dtype=np.int64)
        space.touch(vma, probes)
        space.touch_range(vma, 0, vma.length)
        kernel.write_sysfs_thp_enabled("always")
        before = vma.resident_bytes
        space.khugepaged_scan()
        # residency may only have grown to whole extents
        assert vma.resident_bytes >= before
        assert kernel.anon_thp_bytes == vma.thp_bytes


class TestProcessLifecycle:
    def test_exit_releases_everything(self, kernel):
        space = kernel.new_address_space()
        kernel.pool(2 * MiB).set_pool_size(16)
        v1 = space.mmap(100 * MiB)
        v2 = space.mmap(8 * MiB, hugetlb_size=2 * MiB)
        space.touch_range(v1, 0, v1.length)
        space.touch_range(v2, 0, v2.length)
        kernel.exit_process(space)
        assert kernel.anon_base_bytes == 0
        assert kernel.anon_thp_bytes == 0
        assert kernel.pool(2 * MiB).allocated == 0
        assert kernel.pool(2 * MiB).reserved == 0


class TestHugetlbDegradation:
    """ENOMEM semantics and the counted base-page fallback (the kernel
    side of the supervisor's graceful-degradation contract)."""

    def test_enomem_message_names_the_mapping(self, space):
        with pytest.raises(AllocationError, match="ENOMEM") as exc_info:
            space.mmap(2 * MiB, hugetlb_size=2 * MiB, name="flash-unk")
        assert "flash-unk" in str(exc_info.value)

    def test_fallback_degrades_to_base_pages(self, kernel, space):
        """An exhausted pool with ``hugetlb_fallback=True`` yields a
        working base-page VMA and one counted degradation."""
        vma = space.mmap(2 * MiB, hugetlb_size=2 * MiB,
                         hugetlb_fallback=True, name="flash-unk")
        assert not vma.flags & MapFlags.HUGETLB
        assert vma.hugetlb_size is None
        assert kernel.degradations.counts == {
            "hugetlb_base_page_fallback": 1}
        assert "flash-unk" in kernel.degradations.details[
            "hugetlb_base_page_fallback"]
        # the fallback VMA faults real base pages
        space.touch_range(vma, 0, vma.length)
        assert kernel.anon_base_bytes == vma.length

    def test_fallback_unused_when_pool_has_pages(self, kernel, space):
        kernel.pool(2 * MiB).set_pool_size(8)
        vma = space.mmap(2 * MiB, hugetlb_size=2 * MiB,
                         hugetlb_fallback=True)
        assert vma.flags & MapFlags.HUGETLB
        assert kernel.pool(2 * MiB).reserved == 1
        assert kernel.degradations.counts == {}

    def test_failed_hugetlb_mmap_leaves_no_vma(self, kernel, space):
        """The refused mapping must not leak address space or pool
        reservations (the reserve-before-create ordering)."""
        with pytest.raises(AllocationError):
            space.mmap(2 * MiB, hugetlb_size=2 * MiB)
        assert space.vmas == []
        assert kernel.pool(2 * MiB).reserved == 0
        follow_up = space.mmap(1 * MiB)
        assert follow_up.length >= 1 * MiB
