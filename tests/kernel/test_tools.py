"""Tests for the hugeadm / hugectl tool models."""

import pytest

from repro.util import MiB
from repro.util.errors import KernelError
from repro.kernel.params import ookami_config
from repro.kernel.thp import THPMode
from repro.kernel.tools import Hugeadm, hugectl
from repro.kernel.vmm import Kernel


@pytest.fixture
def kernel():
    return Kernel(ookami_config())


class TestHugeadm:
    def test_pool_pages_min(self, kernel):
        Hugeadm(kernel).pool_pages_min(128)
        assert kernel.pool(2 * MiB).nr_hugepages == 128

    def test_pool_pages_min_specific_size(self, kernel):
        Hugeadm(kernel).pool_pages_min(2, page_size=512 * MiB)
        assert kernel.pool(512 * MiB).nr_hugepages == 2

    def test_pool_pages_max(self, kernel):
        adm = Hugeadm(kernel)
        adm.pool_pages_min(16)
        adm.pool_pages_max(24)
        assert kernel.pool(2 * MiB).nr_overcommit == 8

    def test_pool_pages_max_below_min_rejected(self, kernel):
        adm = Hugeadm(kernel)
        adm.pool_pages_min(16)
        with pytest.raises(KernelError):
            adm.pool_pages_max(8)

    def test_thp_toggles(self, kernel):
        adm = Hugeadm(kernel)
        adm.thp_never()
        assert kernel.thp.mode is THPMode.NEVER
        adm.thp_madvise()
        assert kernel.thp.mode is THPMode.MADVISE
        adm.thp_always()
        assert kernel.thp.mode is THPMode.ALWAYS

    def test_pool_list(self, kernel):
        adm = Hugeadm(kernel)
        adm.pool_pages_min(10)
        rows = adm.pool_list()
        sizes = {r["size"] for r in rows}
        assert sizes == {2 * MiB, 512 * MiB}
        row2m = next(r for r in rows if r["size"] == 2 * MiB)
        assert row2m["minimum"] == 10


class TestHugectl:
    def test_heap_sets_morecore(self):
        env = hugectl(heap=True)
        assert env["HUGETLB_MORECORE"] == "yes"
        assert env["LD_PRELOAD"] == "libhugetlbfs.so"

    def test_shm_only_touches_shm(self):
        env = hugectl(shm=True)
        assert "HUGETLB_MORECORE" not in env
        assert env["HUGETLB_SHM"] == "yes"

    def test_thp_variant(self):
        """hugectl --shm --thp ... — the paper's quoted invocation."""
        env = hugectl(shm=True, thp=True)
        assert env["HUGETLB_MORECORE"] == "thp"
        assert env["HUGETLB_SHM"] == "yes"

    def test_no_options_no_env(self):
        assert hugectl() == {}
