"""Unit and property tests for hugetlb pool accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util import MiB
from repro.util.errors import AllocationError, KernelError
from repro.kernel.hugetlbfs import HugePool


def make_pool(n=16, overcommit=0):
    return HugePool(page_size=2 * MiB, nr_hugepages=n, nr_overcommit=overcommit)


class TestReserveFault:
    def test_reserve_then_fault(self):
        pool = make_pool()
        pool.reserve(4)
        assert pool.reserved == 4
        assert pool.free == 16  # reserved pages still count as free
        pool.fault(4)
        assert pool.allocated == 4
        assert pool.reserved == 0
        assert pool.free == 12

    def test_reserve_beyond_pool_raises(self):
        pool = make_pool(4)
        with pytest.raises(AllocationError):
            pool.reserve(5)

    def test_overcommit_creates_surplus(self):
        pool = make_pool(4, overcommit=4)
        pool.reserve(6)
        assert pool.surplus == 2
        assert pool.total == 6

    def test_overcommit_ceiling(self):
        pool = make_pool(4, overcommit=2)
        with pytest.raises(AllocationError):
            pool.reserve(8)

    def test_release_returns_surplus(self):
        pool = make_pool(0, overcommit=4)
        pool.reserve(3)
        pool.fault(3)
        assert pool.surplus == 3
        pool.release(3)
        assert pool.surplus == 0
        assert pool.total == 0

    def test_unreserve(self):
        pool = make_pool()
        pool.reserve(8)
        pool.unreserve(8)
        assert pool.reserved == 0
        assert pool.available_for_reservation == 16

    def test_fault_more_than_reserved_raises(self):
        pool = make_pool()
        pool.reserve(2)
        with pytest.raises(KernelError):
            pool.fault(3)

    def test_release_more_than_allocated_raises(self):
        pool = make_pool()
        with pytest.raises(KernelError):
            pool.release(1)


class TestPoolResize:
    def test_grow(self):
        pool = make_pool(4)
        pool.set_pool_size(32)
        assert pool.nr_hugepages == 32
        assert pool.free == 32

    def test_shrink_below_in_use_creates_surplus(self):
        pool = make_pool(8)
        pool.reserve(6)
        pool.fault(6)
        pool.set_pool_size(2)
        assert pool.total >= 6  # in-use pages cannot vanish
        assert pool.surplus == 4

    def test_negative_rejected(self):
        pool = make_pool()
        with pytest.raises(KernelError):
            pool.set_pool_size(-1)


@settings(max_examples=200)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["reserve", "fault", "release", "unreserve", "resize"]),
              st.integers(min_value=0, max_value=8)),
    max_size=30,
))
def test_pool_invariants_under_random_ops(ops):
    """Whatever legal sequence of operations runs, accounting stays sane."""
    pool = HugePool(page_size=2 * MiB, nr_hugepages=8, nr_overcommit=4)
    for op, n in ops:
        try:
            if op == "reserve":
                pool.reserve(n)
            elif op == "fault":
                pool.fault(min(n, pool.reserved))
            elif op == "release":
                pool.release(min(n, pool.allocated))
            elif op == "unreserve":
                pool.unreserve(min(n, pool.reserved))
            elif op == "resize":
                pool.set_pool_size(n)
        except AllocationError:
            pass  # legal refusal
        pool.check_invariants()
        assert pool.free >= 0
        assert pool.total == pool.nr_hugepages + pool.surplus
