"""Property-based tests: VMM accounting stays consistent under any legal
sequence of operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util import GiB, KiB, MiB
from repro.util.errors import AllocationError
from repro.kernel.params import ookami_config
from repro.kernel.thp import THPMode
from repro.kernel.vmm import Kernel


OPS = st.lists(
    st.tuples(
        st.sampled_from(["mmap", "touch", "munmap", "toggle_thp"]),
        st.integers(0, 7),  # operand selector
    ),
    max_size=25,
)


def _expected_anon(kernel):
    total = 0
    for space in kernel.address_spaces:
        for vma in space.vmas:
            if vma.anonymous and not vma.is_hugetlb:
                total += vma.resident_bytes
    return total


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_accounting_matches_vma_state(ops):
    """kernel.anon_* always equals the sum over live VMAs, and mem_free
    never goes negative, whatever sequence of operations runs."""
    kernel = Kernel(ookami_config(thp_mode=THPMode.ALWAYS))
    space = kernel.new_address_space()
    vmas = []
    sizes = [64 * KiB, 1 * MiB, 100 * MiB, 600 * MiB]
    for op, sel in ops:
        try:
            if op == "mmap":
                vmas.append(space.mmap(sizes[sel % len(sizes)]))
            elif op == "touch" and vmas:
                vma = vmas[sel % len(vmas)]
                span = min(vma.length, (sel + 1) * 16 * MiB)
                space.touch_range(vma, 0, span)
            elif op == "munmap" and vmas:
                vma = vmas.pop(sel % len(vmas))
                space.munmap(vma)
            elif op == "toggle_thp":
                kernel.write_sysfs_thp_enabled(
                    ["always", "madvise", "never"][sel % 3])
        except AllocationError:
            pass  # legal refusal under memory pressure
        anon = kernel.anon_base_bytes + kernel.anon_thp_bytes
        assert anon == _expected_anon(kernel)
        assert kernel.mem_free >= 0
        assert kernel.anon_thp_bytes % (512 * MiB) == 0  # whole THP units


@settings(max_examples=40, deadline=None)
@given(
    length=st.integers(1, 4 * GiB),
    n_touches=st.integers(1, 16),
    seed=st.integers(0, 2**31),
)
def test_touch_translate_agree(length, n_touches, seed):
    """After touching random offsets, translate() maps each of them to a
    page that contains it, with a size the geometry actually offers."""
    kernel = Kernel(ookami_config(thp_mode=THPMode.ALWAYS))
    space = kernel.new_address_space()
    vma = space.mmap(length)
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, vma.length, size=n_touches).astype(np.int64)
    try:
        space.touch(vma, offsets)
    except AllocationError:
        return  # 4 GiB of THP may not fit; fine
    base, size = space.translate(vma, offsets)
    va = vma.start + offsets
    assert ((base <= va) & (va < base + size)).all()
    geo = kernel.config.geometry
    assert set(np.unique(size)) <= {geo.base_page, geo.thp_page}
    assert (base % size == 0).all()


@settings(max_examples=30, deadline=None)
@given(pages=st.integers(1, 64), touched=st.integers(0, 64))
def test_hugetlb_pool_round_trip(pages, touched):
    """mmap + partial touch + munmap returns the pool to pristine state."""
    kernel = Kernel(ookami_config())
    pool = kernel.pool(2 * MiB)
    pool.set_pool_size(64)
    space = kernel.new_address_space()
    vma = space.mmap(pages * 2 * MiB, hugetlb_size=2 * MiB)
    span = min(touched, pages) * 2 * MiB
    if span:
        space.touch_range(vma, 0, span)
    space.munmap(vma)
    assert pool.allocated == 0
    assert pool.reserved == 0
    assert pool.free == 64
    pool.check_invariants()
