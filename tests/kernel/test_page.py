"""Unit and property tests for page geometry and alignment arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.util import KiB, MiB
from repro.util.errors import ConfigurationError
from repro.kernel.page import (
    AARCH64_4K,
    AARCH64_64K,
    X86_64_4K,
    PageGeometry,
    align_down,
    align_up,
    is_aligned,
    is_power_of_two,
    pages_spanned,
)

POWERS = st.sampled_from([1 << n for n in range(0, 40)])
ADDRS = st.integers(min_value=0, max_value=1 << 48)


class TestAlignment:
    def test_align_down_basic(self):
        assert align_down(0x12345, 0x1000) == 0x12000

    def test_align_up_basic(self):
        assert align_up(0x12345, 0x1000) == 0x13000

    def test_align_up_already_aligned(self):
        assert align_up(0x12000, 0x1000) == 0x12000

    def test_is_aligned(self):
        assert is_aligned(2 * MiB, 2 * MiB)
        assert not is_aligned(2 * MiB + 64 * KiB, 2 * MiB)

    @given(addr=ADDRS, alignment=POWERS)
    def test_align_down_properties(self, addr, alignment):
        down = align_down(addr, alignment)
        assert down <= addr
        assert down % alignment == 0
        assert addr - down < alignment

    @given(addr=ADDRS, alignment=POWERS)
    def test_align_up_properties(self, addr, alignment):
        up = align_up(addr, alignment)
        assert up >= addr
        assert up % alignment == 0
        assert up - addr < alignment

    @given(addr=ADDRS, alignment=POWERS)
    def test_round_trip_consistency(self, addr, alignment):
        assert align_down(align_up(addr, alignment), alignment) == align_up(
            addr, alignment
        )

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64 * KiB)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3 * KiB)
        assert not is_power_of_two(-4)


class TestPagesSpanned:
    def test_single_page(self):
        assert pages_spanned(0, 1, 4096) == 1

    def test_exact_page(self):
        assert pages_spanned(0, 4096, 4096) == 1

    def test_crossing_boundary(self):
        assert pages_spanned(4095, 2, 4096) == 2

    def test_zero_length(self):
        assert pages_spanned(100, 0, 4096) == 0

    @given(start=ADDRS, length=st.integers(min_value=1, max_value=1 << 30),
           page=POWERS.filter(lambda p: p >= 4096))
    def test_bounds(self, start, length, page):
        n = pages_spanned(start, length, page)
        # n pages must cover the range, n-1 must not
        assert n * page >= length
        assert (n - 1) * page < length + page  # loose lower bound
        assert n <= length // page + 2


class TestPageGeometry:
    def test_ookami_geometry(self):
        """The load-bearing fact: 64K granule -> 512 MiB THP, 2M/512M hugetlb."""
        assert AARCH64_64K.base_page == 64 * KiB
        assert AARCH64_64K.thp_page == 512 * MiB
        assert AARCH64_64K.hugetlb_sizes == (2 * MiB, 512 * MiB)

    def test_x86_geometry(self):
        assert X86_64_4K.thp_page == 2 * MiB
        assert X86_64_4K.hugetlb_sizes == (2 * MiB,)

    def test_aarch64_4k_geometry(self):
        assert AARCH64_4K.hugetlb_sizes == (64 * KiB, 2 * MiB)

    def test_validate_huge_size_accepts(self):
        assert AARCH64_64K.validate_huge_size(2 * MiB) == 2 * MiB

    def test_validate_huge_size_rejects(self):
        with pytest.raises(ConfigurationError):
            AARCH64_64K.validate_huge_size(4 * KiB)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PageGeometry(base_page=3000, pmd_page=2 * MiB)

    def test_rejects_pmd_not_larger(self):
        with pytest.raises(ConfigurationError):
            PageGeometry(base_page=64 * KiB, pmd_page=64 * KiB)
