"""Tests for THP policy state and the sysfs `enabled` file model."""

import pytest

from repro.kernel.thp import KhugepagedConfig, THPMode, THPState


class TestTHPMode:
    def test_parse_bare_word(self):
        assert THPMode.parse("always") is THPMode.ALWAYS

    def test_parse_bracketed_sysfs(self):
        assert THPMode.parse("always madvise [never]") is THPMode.NEVER

    def test_sysfs_round_trip(self):
        for mode in THPMode:
            assert THPMode.parse(mode.sysfs()) is mode

    def test_sysfs_format_matches_paper(self):
        """The paper quotes '[always] madvise never' after `echo always`."""
        assert THPMode.ALWAYS.sysfs() == "[always] madvise never"
        assert THPMode.NEVER.sysfs() == "always madvise [never]"


class TestFaultPolicy:
    def test_always_allows_anonymous(self):
        st = THPState(mode=THPMode.ALWAYS)
        assert st.fault_allows_huge(anonymous=True, madv_hugepage=False,
                                    madv_nohugepage=False)

    def test_never_blocks_everything(self):
        st = THPState(mode=THPMode.NEVER)
        assert not st.fault_allows_huge(anonymous=True, madv_hugepage=True,
                                        madv_nohugepage=False)

    def test_madvise_requires_hint(self):
        st = THPState(mode=THPMode.MADVISE)
        assert not st.fault_allows_huge(anonymous=True, madv_hugepage=False,
                                        madv_nohugepage=False)
        assert st.fault_allows_huge(anonymous=True, madv_hugepage=True,
                                    madv_nohugepage=False)

    def test_file_backed_never_huge(self):
        """THP only maps anonymous memory (heap/stack) — RedHat doc cited
        by the paper, and why static arrays never huge-page."""
        st = THPState(mode=THPMode.ALWAYS)
        assert not st.fault_allows_huge(anonymous=False, madv_hugepage=True,
                                        madv_nohugepage=False)

    def test_nohugepage_wins(self):
        st = THPState(mode=THPMode.ALWAYS)
        assert not st.fault_allows_huge(anonymous=True, madv_hugepage=True,
                                        madv_nohugepage=True)

    def test_write_enabled_echo_always(self):
        st = THPState(mode=THPMode.NEVER)
        st.write_enabled("always")
        assert st.mode is THPMode.ALWAYS
        assert st.read_enabled() == "[always] madvise never"


class TestCollapsePolicy:
    def test_collapse_respects_max_ptes_none(self):
        st = THPState(mode=THPMode.ALWAYS,
                      khugepaged=KhugepagedConfig(max_ptes_none=10))
        common = dict(anonymous=True, madv_hugepage=False, madv_nohugepage=False,
                      ptes_per_extent=8192)
        assert st.collapse_allows_huge(populated_ptes=8185, **common)
        assert not st.collapse_allows_huge(populated_ptes=8181, **common)

    def test_collapse_needs_some_population(self):
        st = THPState(mode=THPMode.ALWAYS)
        assert not st.collapse_allows_huge(
            anonymous=True, madv_hugepage=False, madv_nohugepage=False,
            populated_ptes=0, ptes_per_extent=8192)

    def test_collapse_respects_mode(self):
        st = THPState(mode=THPMode.NEVER)
        assert not st.collapse_allows_huge(
            anonymous=True, madv_hugepage=True, madv_nohugepage=False,
            populated_ptes=8192, ptes_per_extent=8192)
