"""Tests for boot parameters and sysctl modelling."""

import pytest

from repro.util import MiB
from repro.util.errors import ConfigurationError
from repro.kernel.page import AARCH64_64K
from repro.kernel.params import BootParams, KernelConfig, Sysctl, ookami_config
from repro.kernel.thp import THPMode


class TestBootParams:
    def test_paper_cmdline(self):
        """The exact boot line from the paper's section III."""
        bp = BootParams.from_cmdline(
            "hugepagesz=2M hugepagesz=512M default_hugepagesz=2M"
        )
        assert bp.hugepagesz == (2 * MiB, 512 * MiB)
        assert bp.default_hugepagesz == 2 * MiB

    def test_hugepages_binds_to_preceding_size(self):
        bp = BootParams.from_cmdline(
            "hugepagesz=2M hugepages=100 hugepagesz=512M hugepages=4"
        )
        assert bp.hugepages == {2 * MiB: 100, 512 * MiB: 4}

    def test_hugepages_without_size_uses_smallest(self):
        bp = BootParams.from_cmdline("hugepages=10")
        assert bp.hugepages == {AARCH64_64K.hugetlb_sizes[0]: 10}

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BootParams.from_cmdline("hugepagesz=3M")

    def test_validate_default_must_be_configured(self):
        bp = BootParams(hugepagesz=(2 * MiB,), default_hugepagesz=512 * MiB)
        with pytest.raises(ConfigurationError):
            bp.validate(AARCH64_64K)

    def test_irrelevant_tokens_ignored(self):
        bp = BootParams.from_cmdline("quiet ro root=/dev/sda1 hugepagesz=512M")
        assert 512 * MiB in bp.hugepagesz


class TestSysctl:
    def test_default_denies_full_pmu(self):
        s = Sysctl()
        assert not s.allows_full_pmu()

    def test_fujitsu_setting_allows_user_pmu(self):
        """kernel.perf_event_paranoid=1 from 98-fujitsucompilersettings.conf."""
        s = Sysctl(perf_event_paranoid=1)
        assert s.allows_pmu_access()

    def test_privileged_always_allowed(self):
        s = Sysctl(perf_event_paranoid=3)
        assert s.allows_full_pmu(privileged=True)


class TestKernelConfig:
    def test_ookami_modified_node(self):
        cfg = ookami_config(modified_node=True)
        assert cfg.sysctl.perf_event_paranoid == 1
        assert cfg.boot.default_hugepagesz == 2 * MiB
        assert cfg.thp_mode is THPMode.MADVISE

    def test_ookami_unmodified_node(self):
        cfg = ookami_config(modified_node=False)
        assert cfg.sysctl.perf_event_paranoid == 2

    def test_os_reserved_must_fit(self):
        with pytest.raises(ConfigurationError):
            KernelConfig(mem_total=1 * MiB, os_reserved=2 * MiB)
