"""Tests for the allocator models — the mechanisms behind the mystery."""

import numpy as np
import pytest

from repro.util import GiB, KiB, MiB
from repro.util.errors import AllocationError
from repro.kernel.params import ookami_config
from repro.kernel.vmm import Kernel
from repro.toolchain.allocator import FujitsuLargePage, GlibcMalloc
from repro.toolchain.env import ProcessEnv


@pytest.fixture
def kernel():
    return Kernel(ookami_config())


@pytest.fixture
def space(kernel):
    return kernel.new_address_space()


class TestGlibc:
    def test_small_goes_to_heap(self, space):
        alloc = GlibcMalloc().allocate(space, 4 * KiB, "small")
        assert alloc.vma.name == "[heap]"

    def test_large_goes_to_mmap(self, space):
        alloc = GlibcMalloc().allocate(space, 100 * MiB, "unk")
        assert alloc.vma.name != "[heap]"
        assert not alloc.vma.is_hugetlb

    def test_threshold_boundary(self, space):
        glibc = GlibcMalloc(mmap_threshold=128 * KiB)
        below = glibc.allocate(space, 64 * KiB, "below")
        above = glibc.allocate(space, 128 * KiB, "above")
        assert below.vma.name == "[heap]"
        assert above.vma.name != "[heap]"

    def test_header_offset(self, space):
        alloc = GlibcMalloc().allocate(space, 1 * MiB, "x")
        assert alloc.offset == 16

    def test_heap_suballocations_disjoint(self, space):
        glibc = GlibcMalloc()
        a = glibc.allocate(space, 1 * KiB, "a")
        b = glibc.allocate(space, 1 * KiB, "b")
        assert a.vma is b.vma
        assert a.offset + a.nbytes <= b.offset

    def test_zero_size_rejected(self, space):
        with pytest.raises(AllocationError):
            GlibcMalloc().allocate(space, 0, "zero")

    def test_morecore_hugetlb_heap(self, kernel, space):
        """HUGETLB_MORECORE backs the *heap* with hugetlbfs pages..."""
        kernel.pool(2 * MiB).set_pool_size(256)
        glibc = GlibcMalloc(morecore=2 * MiB)
        alloc = glibc.allocate(space, 4 * KiB, "small")
        alloc.touch_all(space)
        assert alloc.vma.is_hugetlb
        assert kernel.pool(2 * MiB).allocated > 0

    def test_morecore_does_not_affect_mmap_path(self, kernel, space):
        """...but large allocations still bypass it — the paper's failed
        LD_PRELOAD attempts, mechanised."""
        kernel.pool(2 * MiB).set_pool_size(256)
        glibc = GlibcMalloc(morecore=2 * MiB)
        alloc = glibc.allocate(space, 100 * MiB, "unk")
        alloc.touch_all(space)
        assert not alloc.vma.is_hugetlb
        assert alloc.vma.thp_bytes == 0  # 100 MB < 512 MiB THP granule

    def test_morecore_thp_advises_heap(self, space):
        glibc = GlibcMalloc(morecore="thp")
        alloc = glibc.allocate(space, 4 * KiB, "small")
        assert alloc.vma.madv_hugepage

    def test_free_unmaps_mmap(self, kernel, space):
        glibc = GlibcMalloc()
        alloc = glibc.allocate(space, 10 * MiB, "tmp")
        alloc.touch_all(space)
        glibc.free(space, alloc)
        assert kernel.anon_base_bytes < 10 * MiB  # released (heap may remain)


class TestFujitsu:
    def test_large_allocation_hugetlb(self, kernel, space):
        kernel.pool(2 * MiB).nr_overcommit = 10000
        xos = FujitsuLargePage()
        alloc = xos.allocate(space, 100 * MiB, "unk")
        alloc.touch_all(space)
        assert alloc.vma.is_hugetlb
        assert alloc.vma.hugetlb_size == 2 * MiB
        assert alloc.vma.uses_huge_pages()

    def test_small_falls_through_to_glibc(self, space):
        xos = FujitsuLargePage()
        alloc = xos.allocate(space, 4 * KiB, "small")
        assert not alloc.vma.is_hugetlb

    def test_hpage_type_none_disables(self, space):
        xos = FujitsuLargePage(hpage_type="none")
        alloc = xos.allocate(space, 100 * MiB, "unk")
        assert not alloc.vma.is_hugetlb

    def test_hpage_type_thp_advises(self, space):
        xos = FujitsuLargePage(hpage_type="thp")
        alloc = xos.allocate(space, 100 * MiB, "unk")
        assert alloc.vma.madv_hugepage
        assert not alloc.vma.is_hugetlb

    def test_pool_exhaustion_falls_back(self, kernel, space):
        # no pool, no overcommit: the library degrades to normal pages
        xos = FujitsuLargePage()
        alloc = xos.allocate(space, 100 * MiB, "unk")
        alloc.touch_all(space)
        assert not alloc.vma.is_hugetlb

    def test_surplus_pages_show_in_meminfo(self, kernel, space):
        """Unmodified nodes: pages appear as surplus, not a static pool."""
        kernel.pool(2 * MiB).nr_overcommit = 10000
        xos = FujitsuLargePage()
        alloc = xos.allocate(space, 64 * MiB, "unk")
        alloc.touch_all(space)
        pool = kernel.pool(2 * MiB)
        assert pool.surplus == 32
        assert pool.nr_hugepages == 0
