"""Tests for process-environment parsing."""

import pytest

from repro.util.errors import ConfigurationError
from repro.toolchain.env import ProcessEnv


class TestLibhugetlbfs:
    def test_no_preload_no_morecore(self):
        env = ProcessEnv.from_dict({"HUGETLB_MORECORE": "yes"})
        assert env.hugetlb_morecore is None  # preload missing -> inert

    def test_preload_with_yes(self):
        env = ProcessEnv.from_dict(
            {"LD_PRELOAD": "libhugetlbfs.so", "HUGETLB_MORECORE": "yes"}
        )
        assert env.hugetlb_morecore == "default"

    def test_preload_with_thp(self):
        env = ProcessEnv.from_dict(
            {"LD_PRELOAD": "libhugetlbfs.so", "HUGETLB_MORECORE": "thp"}
        )
        assert env.hugetlb_morecore == "thp"

    def test_preload_with_size(self):
        env = ProcessEnv.from_dict(
            {"LD_PRELOAD": "libhugetlbfs.so", "HUGETLB_MORECORE": str(2 << 20)}
        )
        assert env.hugetlb_morecore == 2 << 20

    def test_bad_value_rejected(self):
        env = ProcessEnv.from_dict(
            {"LD_PRELOAD": "libhugetlbfs.so", "HUGETLB_MORECORE": "banana"}
        )
        with pytest.raises(ConfigurationError):
            _ = env.hugetlb_morecore

    def test_shm_flag(self):
        env = ProcessEnv.from_dict(
            {"LD_PRELOAD": "libhugetlbfs.so", "HUGETLB_SHM": "yes"}
        )
        assert env.hugetlb_shm

    def test_preload_among_others(self):
        env = ProcessEnv.from_dict({"LD_PRELOAD": "libfoo.so libhugetlbfs.so"})
        assert env.libhugetlbfs_preloaded


class TestXOS:
    def test_default_is_hugetlbfs(self):
        assert ProcessEnv().xos_hpage_type == "hugetlbfs"

    def test_documented_values(self):
        for value in ("none", "hugetlbfs", "thp"):
            env = ProcessEnv.from_dict({"XOS_MMM_L_HPAGE_TYPE": value})
            assert env.xos_hpage_type == value

    def test_bad_value_rejected(self):
        env = ProcessEnv.from_dict({"XOS_MMM_L_HPAGE_TYPE": "huge"})
        with pytest.raises(ConfigurationError):
            _ = env.xos_hpage_type


def test_merged_does_not_mutate():
    a = ProcessEnv.from_dict({"A": "1"})
    b = a.merged({"B": "2"})
    assert a.get("B") is None
    assert b.get("A") == "1" and b.get("B") == "2"
