"""Tests for compilers, executables, and the huge-page usage matrix.

The matrix tests replicate the paper's section IV findings verbatim:
GNU/Cray FLASH never huge-pages (whatever hugectl/LD_PRELOAD variations
are tried), Fujitsu FLASH huge-pages naturally, -Knolargepage turns it
off, and the toy static/dynamic programs behave as reported.
"""

import pytest

from repro.util import GiB, MiB
from repro.util.errors import ConfigurationError
from repro.kernel.meminfo import hugepages_in_use, meminfo
from repro.kernel.params import ookami_config
from repro.kernel.tools import Hugeadm, hugectl
from repro.kernel.vmm import Kernel
from repro.toolchain.compiler import ARM, COMPILERS, CRAY, FUJITSU, GNU


UNK_BYTES = 96 * MiB  # a realistic FLASH unk for 2-d runs


@pytest.fixture
def kernel():
    return Kernel(ookami_config())


def run_flash_like(kernel, compiler, flags=(), env=None):
    """Allocate and first-touch FLASH's main containers under a toolchain."""
    exe = compiler.compile("flash4", flags=flags)
    proc = exe.launch(kernel, env=env)
    proc.allocate(UNK_BYTES, "unk")
    proc.allocate(UNK_BYTES // 8, "facevar")
    # PARAMESH initialises variable-by-variable: strided first touch
    proc.first_touch("unk", order="strided", stride=2 * MiB)
    proc.first_touch("facevar", order="strided", stride=2 * MiB)
    return proc


class TestCompilerFlags:
    def test_knolargepage_only_fujitsu(self):
        with pytest.raises(ConfigurationError):
            GNU.compile("flash4", flags=("-Knolargepage",))

    def test_knolargepage_disables_runtime(self):
        exe = FUJITSU.compile("flash4", flags=("-Knolargepage",))
        assert not exe.largepage_runtime

    def test_fujitsu_default_has_runtime(self):
        assert FUJITSU.compile("flash4").largepage_runtime

    def test_registry(self):
        assert set(COMPILERS) == {"gnu", "cray", "arm", "fujitsu"}

    def test_fujitsu_finalizers_broken(self):
        """Section II: the PAPI OOP wrapper failed under Fujitsu 4.5."""
        assert not FUJITSU.finalizers_work
        assert GNU.finalizers_work and CRAY.finalizers_work


class TestHugePageMatrix:
    @pytest.mark.parametrize("compiler", [GNU, CRAY], ids=lambda c: c.name)
    def test_gnu_cray_flash_no_huge_pages(self, kernel, compiler):
        proc = run_flash_like(kernel, compiler)
        assert not proc.uses_huge_pages()
        assert not hugepages_in_use(kernel)

    @pytest.mark.parametrize("compiler", [GNU, CRAY], ids=lambda c: c.name)
    def test_hugectl_variants_do_not_help(self, kernel, compiler):
        """'We tried many variations ... all to no avail.'"""
        Hugeadm(kernel).pool_pages_min(4096)  # modified node, big pool
        for env in (
            hugectl(heap=True),
            hugectl(shm=True),
            hugectl(shm=True, thp=True),
            {"LD_PRELOAD": "libhugetlbfs.so"},
        ):
            proc = run_flash_like(kernel, compiler, env=env)
            assert not proc.uses_huge_pages(), f"env={env}"
            proc.exit()

    def test_fujitsu_flash_uses_huge_pages_naturally(self, kernel):
        proc = run_flash_like(kernel, FUJITSU)
        assert proc.uses_huge_pages()
        info = meminfo(kernel)
        assert info["HugePages_Total"] > 0
        assert info["HugePages_Free"] < info["HugePages_Total"]

    def test_fujitsu_knolargepage_disables(self, kernel):
        proc = run_flash_like(kernel, FUJITSU, flags=("-Knolargepage",))
        assert not proc.uses_huge_pages()

    def test_fujitsu_xos_none_disables(self, kernel):
        proc = run_flash_like(kernel, FUJITSU,
                              env={"XOS_MMM_L_HPAGE_TYPE": "none"})
        assert not proc.uses_huge_pages()

    def test_fujitsu_works_on_unmodified_node(self):
        """The paper's closing observation: unmodified nodes behaved the
        same, because the Fujitsu runtime brings its own surplus pages."""
        kernel = Kernel(ookami_config(modified_node=False))
        proc = run_flash_like(kernel, FUJITSU)
        assert proc.uses_huge_pages()
        assert kernel.pool(2 * MiB).surplus > 0


class TestToyPrograms:
    """Section IV's two Fortran test programs, summing over a big 2-d array."""

    ARRAY = 2 * GiB  # big enough to contain 512 MiB THP extents

    @pytest.mark.parametrize("compiler", [GNU, CRAY, FUJITSU],
                             ids=lambda c: c.name)
    def test_dynamic_allocation_gets_huge_pages(self, kernel, compiler):
        # the toy experiments ran on the modified nodes with THP enabled
        Hugeadm(kernel).thp_always()
        exe = compiler.compile("toy_dynamic")
        proc = exe.launch(kernel)
        proc.allocate(self.ARRAY, "array")
        proc.first_touch("array", order="sequential")
        assert proc.uses_huge_pages()

    @pytest.mark.parametrize("compiler", [GNU, CRAY, FUJITSU],
                             ids=lambda c: c.name)
    def test_static_allocation_gets_none(self, kernel, compiler):
        exe = compiler.compile("toy_static")
        exe = type(exe)(**{**exe.__dict__, "static_bytes": self.ARRAY + MiB})
        proc = exe.launch(kernel)
        proc.static_array(self.ARRAY, "array")
        proc.first_touch("array", order="sequential")
        assert not proc.uses_huge_pages()


class TestProcessLifecycle:
    def test_exit_cleans_up(self, kernel):
        proc = run_flash_like(kernel, FUJITSU)
        proc.exit()
        assert kernel.anon_base_bytes == 0
        assert kernel.pool(2 * MiB).allocated == 0

    def test_free_by_name(self, kernel):
        proc = run_flash_like(kernel, GNU)
        before = kernel.anon_base_bytes
        proc.free("unk")
        assert kernel.anon_base_bytes < before

    def test_arm_perf_trait(self):
        assert ARM.perf.scalar_multiplier == pytest.approx(2.5)
