"""Property-based mesh invariants under random refinement activity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import derefine_block, refine_block
from repro.mesh.tree import AMRTree


def make_grid(max_level=3, maxblocks=512):
    tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=max_level,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2,
                    maxblocks=maxblocks)
    return Grid(tree, spec)


def leaf_volume(grid):
    return sum(grid.cell_volume(b) * grid.spec.zones_per_block()
               for b in grid.leaf_blocks())


@settings(max_examples=40, deadline=None)
@given(moves=st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)),
                      max_size=18))
def test_refinement_invariants(moves):
    """Any mix of refines/derefines keeps: full domain coverage, unique
    slots, 2:1 balance, and exact mass conservation."""
    grid = make_grid()
    rng_vals = iter([sel for _, sel in moves])
    for block in grid.leaf_blocks():
        x, y, _ = grid.cell_centers(block)
        grid.interior(block, "dens")[:] = 1.0 + x + 2 * y
    mass0 = grid.total("dens", weight=None)

    for refine, sel in moves:
        leaves = grid.tree.leaves()
        if refine:
            candidates = [b for b in leaves if b.level < grid.tree.max_level]
            if candidates:
                refine_block(grid, candidates[sel % len(candidates)])
        else:
            parents = {b.parent for b in leaves if b.level > 0}
            parents = sorted(parents)
            if parents:
                derefine_block(grid, parents[sel % len(parents)])

        grid.tree.check_balance()
        slots = [b.slot for b in grid.leaf_blocks()]
        assert len(slots) == len(set(slots))
        assert leaf_volume(grid) == pytest.approx(1.0, rel=1e-12)
        assert grid.total("dens", weight=None) == pytest.approx(
            mass0, rel=1e-11)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31))
def test_guardcell_idempotent_on_faces(seed):
    """Filling guard cells twice gives identical interior and *face*
    guard data (no feedback).  Corner guards at refinement jumps are
    excluded: they are a documented approximation (guardcell.py) that the
    dimensionally split solvers never read."""
    from repro.mesh.guardcell import fill_guardcells

    grid = make_grid(max_level=2)
    refine_block(grid, BlockId(0, 1, 1))
    rng = np.random.default_rng(seed)
    for block in grid.leaf_blocks():
        shape = grid.interior(block, "dens").shape
        grid.interior(block, "dens")[:] = 1.0 + rng.random(shape)
    fill_guardcells(grid)
    snapshot = grid.unk.copy()
    fill_guardcells(grid)

    g = grid.spec.nguard
    n = grid.spec.nxb
    sx, sy, sz = grid.spec.interior_slices()
    for block in grid.leaf_blocks():
        a = grid.unk[..., block.slot]
        b = snapshot[..., block.slot]
        # interior
        np.testing.assert_array_equal(a[:, sx, sy, sz], b[:, sx, sy, sz])
        # x-face guards over interior y
        np.testing.assert_array_equal(a[:, :g, sy, sz], b[:, :g, sy, sz])
        np.testing.assert_array_equal(a[:, g + n:, sy, sz],
                                      b[:, g + n:, sy, sz])
        # y-face guards over interior x
        np.testing.assert_array_equal(a[:, sx, :g, sz], b[:, sx, :g, sz])
        np.testing.assert_array_equal(a[:, sx, g + n:, sz],
                                      b[:, sx, g + n:, sz])


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31))
def test_refine_then_derefine_bounded_loss(seed):
    """refine -> derefine is restriction-of-prolongation: conservative and
    close to the original (equal up to limiter flattening)."""
    grid = make_grid(max_level=2)
    rng = np.random.default_rng(seed)
    block = grid.leaf_blocks()[0]
    original = 1.0 + rng.random(grid.interior(block, "dens").shape)
    grid.interior(block, "dens")[:] = original
    bid = block.bid
    refine_block(grid, bid)
    assert derefine_block(grid, bid)
    recovered = grid.interior(grid.blocks[bid], "dens")
    np.testing.assert_allclose(recovered, original, rtol=1e-12)
