"""Property and unit tests for restriction/prolongation operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.mesh.prolong import prolong, restrict, restrict_fluxes
from repro.util.errors import MeshError


class TestRestrict:
    def test_average_2d(self):
        fine = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        coarse = restrict(fine, (0, 1))
        assert coarse.shape == (1, 2, 2, 1)
        assert coarse[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_average_3d(self):
        fine = np.ones((2, 4, 4, 4))
        coarse = restrict(fine, (0, 1, 2))
        assert coarse.shape == (2, 2, 2, 2)
        assert np.allclose(coarse, 1.0)

    def test_odd_extent_rejected(self):
        with pytest.raises(MeshError):
            restrict(np.ones((1, 3, 2, 1)), (0, 1))

    def test_conservation(self):
        rng = np.random.default_rng(1)
        fine = rng.random((3, 8, 8, 1))
        coarse = restrict(fine, (0, 1))
        assert coarse.sum() * 4 == pytest.approx(fine.sum())


class TestProlong:
    def test_constant_exact(self):
        coarse = np.full((2, 4, 4, 1), 3.5)
        fine = prolong(coarse, (0, 1))
        assert fine.shape == (2, 8, 8, 1)
        assert np.allclose(fine, 3.5)

    def test_conservative(self):
        rng = np.random.default_rng(2)
        coarse = rng.random((2, 6, 6, 1))
        fine = prolong(coarse, (0, 1))
        # each parent's 4 children average to the parent exactly
        back = restrict(fine, (0, 1))
        assert np.allclose(back, coarse)

    def test_linear_reproduced_in_interior(self):
        """A linear profile is reconstructed exactly away from the strip
        edges (where slopes are one-sided-clamped)."""
        x = np.arange(8, dtype=float)
        coarse = np.tile(x.reshape(1, 8, 1, 1), (1, 1, 8, 1)).astype(float)
        fine = prolong(coarse, (0, 1))
        # interior fine cells: parent i has children at i*2, i*2+1 with
        # values x_i -/+ 0.25
        assert fine[0, 4, 0, 0] == pytest.approx(2.0 - 0.25)
        assert fine[0, 5, 0, 0] == pytest.approx(2.0 + 0.25)

    def test_monotone_near_jump(self):
        """The limiter must not create new extrema at a discontinuity."""
        coarse = np.zeros((1, 8, 1, 1))
        coarse[0, 4:, 0, 0] = 1.0
        fine = prolong(coarse, (0,))
        assert fine.min() >= 0.0 - 1e-14
        assert fine.max() <= 1.0 + 1e-14

    def test_3d_shapes(self):
        coarse = np.random.default_rng(3).random((2, 4, 4, 4))
        fine = prolong(coarse, (0, 1, 2))
        assert fine.shape == (2, 8, 8, 8)
        assert np.allclose(restrict(fine, (0, 1, 2)), coarse)

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, (1, 6, 4, 1),
                  elements=st.floats(-1e6, 1e6, allow_nan=False)))
    def test_round_trip_property(self, coarse):
        fine = prolong(coarse, (0, 1))
        assert np.allclose(restrict(fine, (0, 1)), coarse, rtol=1e-12, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, (1, 6, 1, 1),
                  elements=st.floats(0.0, 1e6, allow_nan=False)))
    def test_positivity_preserved(self, coarse):
        """minmod-limited prolongation of nonnegative data stays nonnegative
        ... because each child deviates by at most half the cell jump."""
        fine = prolong(coarse, (0,))
        assert fine.min() >= -1e-9 * max(1.0, abs(coarse).max())


class TestRestrictFluxes:
    def test_face_average_2d(self):
        flux = np.arange(8, dtype=float).reshape(1, 8, 1)
        coarse = restrict_fluxes(flux, (0,))
        assert coarse.shape == (1, 4, 1)
        assert coarse[0, 0, 0] == pytest.approx(0.5)

    def test_face_average_3d(self):
        flux = np.ones((2, 4, 4))
        coarse = restrict_fluxes(flux, (0, 1))
        assert coarse.shape == (2, 2, 2)
        assert np.allclose(coarse, 1.0)
