"""Tests for refinement data motion, Löhner marking, and flux correction."""

import numpy as np
import pytest

from repro.mesh.block import BlockId
from repro.mesh.flux import FluxRegister
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import derefine_block, loehner_error, refine_block, refine_pass
from repro.mesh.tree import AMRTree


def make_grid(ndim=2, nxb=8, max_level=3, maxblocks=256):
    tree = AMRTree(ndim=ndim, nblockx=2, nblocky=2 if ndim > 1 else 1,
                   nblockz=2 if ndim > 2 else 1, max_level=max_level)
    spec = MeshSpec(ndim=ndim, nxb=nxb, nyb=nxb if ndim > 1 else 1,
                    nzb=nxb if ndim > 2 else 1, nguard=2, maxblocks=maxblocks)
    return Grid(tree, spec)


class TestRefineData:
    def test_refine_conserves_mass(self):
        grid = make_grid()
        rng = np.random.default_rng(0)
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 1.0 + rng.random(
                grid.interior(block, "dens").shape)
        mass0 = grid.total("dens", weight=None)
        refine_block(grid, BlockId(0, 0, 0))
        assert grid.total("dens", weight=None) == pytest.approx(mass0, rel=1e-13)

    def test_derefine_roundtrip_constant_exact(self):
        grid = make_grid()
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 4.2
        refine_block(grid, BlockId(0, 0, 0))
        derefine_block(grid, BlockId(0, 0, 0))
        block = grid.blocks[BlockId(0, 0, 0)]
        assert np.allclose(grid.interior(block, "dens"), 4.2)

    def test_derefine_conserves_mass(self):
        grid = make_grid()
        rng = np.random.default_rng(1)
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 1.0 + rng.random(
                grid.interior(block, "dens").shape)
        refine_block(grid, BlockId(0, 1, 0))
        mass0 = grid.total("dens", weight=None)
        assert derefine_block(grid, BlockId(0, 1, 0))
        assert grid.total("dens", weight=None) == pytest.approx(mass0, rel=1e-13)

    def test_refine_balance_cascade_moves_data(self):
        grid = make_grid(max_level=3)
        for block in grid.leaf_blocks():
            x, y, z = grid.cell_centers(block)
            grid.interior(block, "dens")[:] = 1.0 + x + y
        mass0 = grid.total("dens", weight=None)
        refine_block(grid, BlockId(0, 0, 0))
        # refining a fresh child forces the neighbours to refine too
        refine_block(grid, BlockId(1, 1, 1))
        refine_block(grid, BlockId(2, 3, 3))
        grid.tree.check_balance()
        assert grid.total("dens", weight=None) == pytest.approx(mass0, rel=1e-12)
        # every leaf has a slot and every slot is consistent
        assert len({b.slot for b in grid.leaf_blocks()}) == grid.tree.n_leaves


class TestLoehner:
    def test_zero_for_smooth_linear(self):
        grid = make_grid()
        for block in grid.leaf_blocks():
            x, y, z = grid.cell_centers(block)
            grid.interior(block, "dens")[:] = 1.0 + x  # no curvature
        errs = [loehner_error(grid, b, "dens") for b in grid.leaf_blocks()]
        assert max(errs) < 0.05

    def test_detects_discontinuity(self):
        grid = make_grid()
        for block in grid.leaf_blocks():
            x, y, z = grid.cell_centers(block)
            grid.interior(block, "dens")[:] = np.where(x + 0 * y + 0 * z < 0.4,
                                                       1.0, 10.0)
        target = grid.blocks[BlockId(0, 0, 0)]  # contains the jump
        assert loehner_error(grid, target, "dens") > 0.8

    def test_refine_pass_refines_at_jump(self):
        grid = make_grid(max_level=2)
        for block in grid.leaf_blocks():
            x, y, z = grid.cell_centers(block)
            grid.interior(block, "dens")[:] = np.where(x < 0.4, 1.0, 10.0)
        n_ref, n_deref = refine_pass(grid, "dens")
        assert n_ref >= 2  # the two blocks containing the jump
        grid.tree.check_balance()

    def test_refine_pass_derefines_smooth_bundles(self):
        grid = make_grid(max_level=2)
        refine_block(grid, BlockId(0, 0, 0))
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 1.0  # uniform: nothing to keep
        n_ref, n_deref = refine_pass(grid, "dens")
        assert n_deref == 1
        assert grid.tree.is_leaf(BlockId(0, 0, 0))

    def test_refine_pass_validates_cutoffs(self):
        grid = make_grid()
        with pytest.raises(Exception):
            refine_pass(grid, "dens", refine_cutoff=0.1, derefine_cutoff=0.5)


class TestFluxRegister:
    def _setup_jump(self, ndim=2):
        grid = make_grid(ndim=ndim, max_level=2)
        refine_block(grid, BlockId(0, 1, 0) if ndim == 2 else BlockId(0, 1, 0, 0))
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 1.0
        return grid

    def test_matching_fluxes_no_correction(self):
        """When fine and coarse fluxes agree, correction changes nothing."""
        grid = self._setup_jump()
        reg = FluxRegister(grid)
        nvar = len(grid.variables)
        n = grid.spec.interior_zones
        for block in grid.leaf_blocks():
            for axis in range(2):
                tshape = [n[t] for t in range(2) if t != axis] + [1]
                f = np.full([nvar] + tshape, 2.5)
                reg.put(block.bid, axis, 0, f)
                reg.put(block.bid, axis, 1, f)
        before = grid.unk.copy()
        corrected = reg.correct(dt=0.1)
        assert corrected > 0
        np.testing.assert_allclose(grid.unk, before)

    def test_correction_magnitude(self):
        """A unit flux mismatch moves exactly dt/dx worth of density."""
        grid = self._setup_jump()
        reg = FluxRegister(grid)
        nvar = len(grid.variables)
        n = grid.spec.interior_zones
        for block in grid.leaf_blocks():
            for axis in range(2):
                tshape = [n[t] for t in range(2) if t != axis] + [1]
                value = 1.0 if block.level == 1 else 0.0
                f = np.full([nvar] + tshape, value)
                reg.put(block.bid, axis, 0, f)
                reg.put(block.bid, axis, 1, f)
        coarse = grid.blocks[BlockId(0, 0, 0)]
        dx = coarse.deltas(n)[0]
        dt = 0.01
        reg.correct(dt=dt)
        # coarse block's right face abuts fine blocks: fine flux (1.0)
        # replaces coarse flux (0.0) at the last interior layer
        g = grid.spec.nguard
        dens = grid.block_data(coarse)[grid.var("dens")]
        expected = 1.0 - dt / dx * (1.0 - 0.0)
        assert dens[g + n[0] - 1, g, 0] == pytest.approx(expected)
        # untouched cells unchanged
        assert dens[g, g, 0] == pytest.approx(1.0)

    def test_conservation_with_hydro_style_update(self):
        """Total mass is conserved when blocks update with their own fluxes
        and the register then corrects the coarse side."""
        grid = self._setup_jump()
        rng = np.random.default_rng(3)
        reg = FluxRegister(grid)
        nvar = len(grid.variables)
        g = grid.spec.nguard
        n = grid.spec.interior_zones
        dt = 0.01
        # random face fluxes: each *interface* gets one shared value per
        # same-level pair; at the jump, fine faces get their own values
        shared: dict = {}
        for block in grid.leaf_blocks():
            dx = block.deltas(n)
            dens = grid.block_data(block)[grid.var("dens")]
            for axis in range(2):
                tshape = [n[t] for t in range(2) if t != axis] + [1]
                fluxes = {}
                for side, direction in ((0, -1), (1, 1)):
                    kind, info = grid.tree.face_neighbor(block.bid, axis, direction)
                    key_pts = (block.bid, axis, side)
                    if kind == "leaf":
                        ikey = tuple(sorted([(block.bid, side), (info, 1 - side)])) + (axis,)
                        if ikey not in shared:
                            shared[ikey] = rng.random([nvar] + tshape)
                        f = shared[ikey]
                    else:
                        f = rng.random([nvar] + tshape)
                    fluxes[side] = f
                    reg.put(block.bid, axis, side, f)
                # finite-volume update with own fluxes
                dflux = fluxes[1] - fluxes[0]  # (nvar, nt, 1)
                shape = [nvar, 1, 1, 1]
                ti = 0
                for t in range(2):
                    if t != axis:
                        shape[t + 1] = n[t]
                sel = [grid.var("dens"), slice(g, g + n[0]), slice(g, g + n[1]),
                       slice(0, 1)]
                grid.block_data(block)[tuple(sel)] -= (
                    dt / dx[axis] * dflux[grid.var("dens")].reshape(shape[1:])
                )
        mass_uncorrected = grid.total("dens", weight=None)
        reg.correct(dt=dt, conserved_vars=["dens"])
        mass_corrected = grid.total("dens", weight=None)
        # boundary faces leak (outflow), so compare against the same update
        # on a *uniform* reference... instead: corrections only move the
        # coarse side toward the fine fluxes; assert the known mismatch sign
        assert mass_corrected != mass_uncorrected

    def test_missing_flux_raises(self):
        grid = self._setup_jump()
        reg = FluxRegister(grid)
        with pytest.raises(Exception):
            reg.correct(dt=0.1)
