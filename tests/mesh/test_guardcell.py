"""Tests for guard-cell filling across all neighbour kinds and BCs."""

import numpy as np
import pytest

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.guardcell import (
    BC_OUTFLOW,
    BC_REFLECT,
    BoundaryConditions,
    fill_guardcells,
)
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree


def make_grid(ndim=2, nxb=8, nguard=2, periodic=(False, False, False),
              max_level=3):
    tree = AMRTree(ndim=ndim, nblockx=2, nblocky=2 if ndim > 1 else 1,
                   nblockz=2 if ndim > 2 else 1, max_level=max_level,
                   periodic=periodic)
    spec = MeshSpec(ndim=ndim, nxb=nxb, nyb=nxb if ndim > 1 else 1,
                    nzb=nxb if ndim > 2 else 1, nguard=nguard, maxblocks=128)
    return Grid(tree, spec)


def set_linear_field(grid, name="dens", coeffs=(2.0, 3.0, 0.0), const=10.0):
    """Fill every block's interior with f(x,y,z) = const + a.x + b.y + c.z."""
    for block in grid.leaf_blocks():
        x, y, z = grid.cell_centers(block)
        grid.interior(block, name)[:] = (
            const + coeffs[0] * x + coeffs[1] * y + coeffs[2] * z
        )


def expected_linear(grid, block, coeffs=(2.0, 3.0, 0.0), const=10.0):
    """Analytic values on the *padded* zone centres of a block."""
    g = grid.spec.nguard
    nx, ny, nz = grid.spec.padded_shape
    out = np.empty((nx, ny, nz))
    dx, dy, dz = block.deltas(grid.spec.interior_zones)
    (x0, _), (y0, _), (z0, _) = block.bbox
    xs = x0 + dx * (np.arange(nx) - g + 0.5)
    ys = y0 + (dy * (np.arange(ny) - g + 0.5) if grid.spec.ndim > 1 else np.zeros(ny))
    zs = z0 + (dz * (np.arange(nz) - g + 0.5) if grid.spec.ndim > 2 else np.zeros(nz))
    return (const + coeffs[0] * xs[:, None, None] + coeffs[1] * ys[None, :, None]
            + coeffs[2] * zs[None, None, :])


class TestSameLevel:
    def test_linear_field_exact(self):
        grid = make_grid()
        set_linear_field(grid)
        fill_guardcells(grid)
        # interior faces between same-level blocks must match analytically
        block = grid.blocks[BlockId(0, 0, 0)]
        data = grid.block_data(block)[grid.var("dens")]
        exp = expected_linear(grid, block)
        g, n = grid.spec.nguard, grid.spec.nxb
        # right-face guards come from the neighbour: exact
        np.testing.assert_allclose(data[g + n:, g:g + n, :],
                                   exp[g + n:, g:g + n, :], rtol=1e-12)
        # top-face guards
        np.testing.assert_allclose(data[g:g + n, g + n:, :],
                                   exp[g:g + n, g + n:, :], rtol=1e-12)

    def test_corner_filled_via_two_passes(self):
        """The x-then-y pass order propagates same-level corner data."""
        grid = make_grid()
        set_linear_field(grid)
        fill_guardcells(grid)
        block = grid.blocks[BlockId(0, 0, 0)]
        data = grid.block_data(block)[grid.var("dens")]
        exp = expected_linear(grid, block)
        g, n = grid.spec.nguard, grid.spec.nxb
        # the interior corner (both-guards) region between the 4 blocks
        np.testing.assert_allclose(data[g + n:, g + n:, :],
                                   exp[g + n:, g + n:, :], rtol=1e-12)

    def test_periodic(self):
        grid = make_grid(periodic=(True, True, False))
        set_linear_field(grid, coeffs=(0.0, 0.0, 0.0), const=5.0)
        block = grid.blocks[BlockId(0, 0, 0)]
        grid.interior(block, "dens")[:] = 9.0  # tag one block
        fill_guardcells(grid)
        right = grid.blocks[BlockId(0, 1, 0)]
        data = grid.block_data(right)[grid.var("dens")]
        g, n = grid.spec.nguard, grid.spec.nxb
        # right block's right guards wrap to the tagged block
        assert np.allclose(data[g + n:, g:g + n, :], 9.0)


class TestPhysicalBCs:
    def test_outflow_replicates_edge(self):
        grid = make_grid()
        set_linear_field(grid)
        fill_guardcells(grid, BoundaryConditions())
        block = grid.blocks[BlockId(0, 0, 0)]
        data = grid.block_data(block)[grid.var("dens")]
        g = grid.spec.nguard
        for i in range(g):
            np.testing.assert_allclose(data[i, g:-g, :], data[g, g:-g, :])

    def test_reflect_mirrors_and_flips_velocity(self):
        grid = make_grid()
        bc = BoundaryConditions(x=(BC_REFLECT, BC_OUTFLOW))
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 1.0
            x, _, _ = grid.cell_centers(block)
            grid.interior(block, "velx")[:] = x  # odd function-ish
        fill_guardcells(grid, bc)
        block = grid.blocks[BlockId(0, 0, 0)]
        dens = grid.block_data(block)[grid.var("dens")]
        velx = grid.block_data(block)[grid.var("velx")]
        g = grid.spec.nguard
        # density mirrored evenly
        np.testing.assert_allclose(dens[g - 1, g:-g, :], dens[g, g:-g, :])
        # velx flipped: guard = -mirror(interior)
        np.testing.assert_allclose(velx[g - 1, g:-g, :], -velx[g, g:-g, :])
        np.testing.assert_allclose(velx[0, g:-g, :], -velx[2 * g - 1, g:-g, :])


class TestFineCoarse:
    def test_coarse_guards_from_fine_restriction(self):
        grid = make_grid(max_level=2)
        set_linear_field(grid)
        refine_block(grid, BlockId(0, 1, 0))
        set_linear_field(grid)  # refill incl. new fine blocks
        fill_guardcells(grid)
        coarse = grid.blocks[BlockId(0, 0, 0)]
        data = grid.block_data(coarse)[grid.var("dens")]
        exp = expected_linear(grid, coarse)
        g, n = grid.spec.nguard, grid.spec.nxb
        # restriction of a linear field is exact at coarse centres
        np.testing.assert_allclose(data[g + n:, g:g + n, :],
                                   exp[g + n:, g:g + n, :], rtol=1e-12)

    def test_fine_guards_from_coarse_prolongation(self):
        grid = make_grid(max_level=2)
        set_linear_field(grid)
        refine_block(grid, BlockId(0, 1, 0))
        set_linear_field(grid)
        fill_guardcells(grid)
        fine = grid.blocks[BlockId(1, 2, 0)]
        data = grid.block_data(fine)[grid.var("dens")]
        exp = expected_linear(grid, fine)
        g, n = grid.spec.nguard, grid.spec.nxb
        # interior rows of the left-face guards (prolonged from coarse):
        # linear field -> exact except at strip edges where slopes clamp;
        # check the transverse-interior part
        np.testing.assert_allclose(data[:g, g + 1:g + n - 1, :],
                                   exp[:g, g + 1:g + n - 1, :], rtol=1e-10)

    def test_conservation_of_guard_restriction(self):
        """Fine->coarse guard data equals the mean of the fine cells."""
        grid = make_grid(max_level=2)
        rng = np.random.default_rng(7)
        refine_block(grid, BlockId(0, 1, 0))
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = rng.random(
                grid.interior(block, "dens").shape)
        fill_guardcells(grid)
        coarse = grid.blocks[BlockId(0, 0, 0)]
        g, n = grid.spec.nguard, grid.spec.nxb
        got = grid.block_data(coarse)[grid.var("dens"), g + n, g, 0]
        # manually average the four touching fine cells of child (1,2,0)
        fine = grid.blocks[BlockId(1, 2, 0)]
        fdata = grid.block_data(fine)[grid.var("dens")]
        manual = fdata[g:g + 2, g:g + 2, 0].mean()
        assert got == pytest.approx(manual)


class Test3D:
    def test_linear_field_exact_3d(self):
        grid = make_grid(ndim=3, nxb=4, nguard=2)
        set_linear_field(grid, coeffs=(1.0, 2.0, 4.0))
        fill_guardcells(grid)
        block = grid.blocks[BlockId(0, 0, 0, 0)]
        data = grid.block_data(block)[grid.var("dens")]
        exp = expected_linear(grid, block, coeffs=(1.0, 2.0, 4.0))
        g, n = grid.spec.nguard, 4
        np.testing.assert_allclose(data[g + n:, g:g + n, g:g + n],
                                   exp[g + n:, g:g + n, g:g + n], rtol=1e-12)
        np.testing.assert_allclose(data[g:g + n, g:g + n, g + n:],
                                   exp[g:g + n, g:g + n, g + n:], rtol=1e-12)
