"""Tests for the Grid/unk container and the UnkLayout stride model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.layout import UnkLayout
from repro.mesh.tree import AMRTree
from repro.util.errors import MeshError


def small_grid(ndim=2, maxblocks=64, nxb=8, max_level=3):
    tree = AMRTree(ndim=ndim, nblockx=2, nblocky=2 if ndim > 1 else 1,
                   nblockz=2 if ndim > 2 else 1, max_level=max_level)
    spec = MeshSpec(ndim=ndim, nxb=nxb, nyb=nxb if ndim > 1 else 1,
                    nzb=nxb if ndim > 2 else 1, nguard=2, maxblocks=maxblocks)
    return Grid(tree, spec)


class TestMeshSpec:
    def test_padded_shape_2d(self):
        spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4)
        assert spec.padded_shape == (24, 24, 1)

    def test_padded_shape_3d(self):
        spec = MeshSpec(ndim=3, nxb=16, nyb=16, nzb=16, nguard=4)
        assert spec.padded_shape == (24, 24, 24)

    def test_zones_per_block(self):
        assert MeshSpec(ndim=3, nxb=16, nyb=16, nzb=16).zones_per_block() == 4096

    def test_rejects_odd_zones(self):
        with pytest.raises(MeshError):
            MeshSpec(ndim=2, nxb=15, nyb=16)

    def test_rejects_nzb_in_2d(self):
        with pytest.raises(MeshError):
            MeshSpec(ndim=2, nxb=16, nyb=16, nzb=4)


class TestVariableRegistry:
    def test_standard_set(self):
        reg = VariableRegistry()
        assert reg.index("dens") == 0
        assert "pres" in reg
        assert len(reg) == 10

    def test_extended(self):
        reg = VariableRegistry().extended("fl01", "fl02")
        assert reg.index("fl02") == len(reg) - 1

    def test_unknown_raises(self):
        with pytest.raises(MeshError):
            VariableRegistry().index("nope")

    def test_duplicates_rejected(self):
        with pytest.raises(MeshError):
            VariableRegistry(("dens", "dens"))


class TestGrid:
    def test_unk_is_fortran_ordered(self):
        grid = small_grid()
        assert grid.unk.flags.f_contiguous
        assert grid.unk.shape[0] == len(grid.variables)

    def test_all_base_leaves_have_slots(self):
        grid = small_grid()
        assert grid.n_blocks == 4
        slots = {b.slot for b in grid.leaf_blocks()}
        assert len(slots) == 4

    def test_interior_view_writes_through(self):
        grid = small_grid()
        block = grid.leaf_blocks()[0]
        grid.interior(block, "dens")[:] = 7.0
        assert grid.block_data(block)[grid.var("dens"), 2, 2, 0] == 7.0
        assert grid.block_data(block)[grid.var("dens"), 0, 0, 0] == 0.0  # guard

    def test_cell_centers(self):
        grid = small_grid()
        block = grid.blocks[BlockId(0, 0, 0)]
        x, y, z = grid.cell_centers(block)
        assert x.shape == (8, 1, 1)
        assert x.flat[0] == pytest.approx(0.5 / 16)  # first centre of 8 zones in [0,0.5]
        assert y.flat[-1] == pytest.approx(0.5 - 0.5 / 16)

    def test_cell_volume_scales_with_level(self):
        grid = small_grid()
        from repro.mesh.refine import refine_block

        v0 = grid.cell_volume(grid.leaf_blocks()[0])
        refine_block(grid, BlockId(0, 0, 0))
        fine = [b for b in grid.leaf_blocks() if b.level == 1][0]
        assert grid.cell_volume(fine) == pytest.approx(v0 / 4)

    def test_total_mass(self):
        grid = small_grid()
        for block in grid.leaf_blocks():
            grid.interior(block, "dens")[:] = 2.0
        # domain [0,1]^2 (z direction collapses), rho=2 -> mass 2
        assert grid.total("dens", weight=None) == pytest.approx(2.0)

    def test_maxblocks_exceeded(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2)
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nguard=2, maxblocks=2)
        with pytest.raises(MeshError):
            Grid(tree, spec)

    def test_slot_reuse_after_remove(self):
        grid = small_grid()
        block = grid.leaf_blocks()[0]
        slot = block.slot
        grid._remove_block(block.bid)
        newb = grid._add_block(block.bid)
        assert newb.slot == slot


class TestUnkLayout:
    def test_strides_match_numpy(self):
        """The layout's documented formula must equal NumPy's own strides
        for the Fortran-ordered unk array."""
        grid = small_grid()
        layout = UnkLayout(nvar=len(grid.variables), spec=grid.spec)
        assert layout.strides == grid.unk.strides
        assert layout.shape == grid.unk.shape
        assert layout.nbytes == grid.unk.nbytes

    def test_offset_formula(self):
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nguard=2, maxblocks=4)
        layout = UnkLayout(nvar=5, spec=spec)
        # element (v=1, i=2, j=3, k=0, b=1)
        expected = 8 * (1 + 5 * (2 + 12 * (3 + 12 * (0 + 1 * 1))))
        assert int(layout.offset(1, 2, 3, 0, 1)) == expected

    def test_block_panel_disjoint(self):
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nguard=2, maxblocks=4)
        layout = UnkLayout(nvar=5, spec=spec)
        r0 = layout.block_panel_range(0)
        r1 = layout.block_panel_range(1)
        assert r0[1] == r1[0]

    def test_zone_gather_order(self):
        """Gather pattern: variables contiguous within a zone, zones in
        Fortran order."""
        spec = MeshSpec(ndim=2, nxb=4, nyb=4, nguard=2, maxblocks=2)
        layout = UnkLayout(nvar=3, spec=spec)
        offs = layout.zone_gather_offsets(0, np.arange(3))
        assert len(offs) == 3 * 16
        # first three offsets: vars 0..2 of the first interior zone
        first = layout.offset(np.arange(3), 2, 2, 0, 0)
        assert (offs[:3] == first).all()
        # strictly increasing within the zone (contiguity)
        assert offs[1] - offs[0] == 8

    def test_sweep_offsets_cover_panel(self):
        spec = MeshSpec(ndim=2, nxb=4, nyb=4, nguard=2, maxblocks=2)
        layout = UnkLayout(nvar=3, spec=spec)
        offs = layout.sweep_offsets(1, np.arange(3), axis=0)
        lo, hi = layout.block_panel_range(1)
        assert offs.min() >= lo
        assert offs.max() < hi

    @given(v=st.integers(0, 2), i=st.integers(0, 7), j=st.integers(0, 7),
           b=st.integers(0, 3))
    @settings(max_examples=40)
    def test_offset_within_allocation(self, v, i, j, b):
        spec = MeshSpec(ndim=2, nxb=4, nyb=4, nguard=2, maxblocks=4)
        layout = UnkLayout(nvar=3, spec=spec)
        off = int(layout.offset(v, i, j, 0, b))
        assert 0 <= off < layout.nbytes
