"""Tests for BlockId arithmetic and the AMR tree."""

import pytest
from hypothesis import given, strategies as st

from repro.mesh.block import BlockId
from repro.mesh.tree import AMRTree, morton_key
from repro.util.errors import MeshError


class TestBlockId:
    def test_child_parent_roundtrip(self):
        b = BlockId(2, 3, 1, 0)
        for dx in (0, 1):
            for dy in (0, 1):
                assert b.child(dx, dy).parent == b

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            _ = BlockId(0, 0, 0).parent

    def test_neighbor(self):
        b = BlockId(1, 1, 1)
        assert b.neighbor(0, 1) == BlockId(1, 2, 1)
        assert b.neighbor(1, -1) == BlockId(1, 1, 0)

    @given(level=st.integers(1, 6), ix=st.integers(0, 100),
           iy=st.integers(0, 100), iz=st.integers(0, 100))
    def test_parent_child_bijection(self, level, ix, iy, iz):
        b = BlockId(level, ix, iy, iz)
        p = b.parent
        assert b in [p.child(dx, dy, dz)
                     for dx in (0, 1) for dy in (0, 1) for dz in (0, 1)]


class TestTreeBasics:
    def test_base_grid(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=3)
        assert tree.n_leaves == 6
        assert all(b.level == 0 for b in tree.leaves())

    def test_extent(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1)
        assert tree.extent(0) == (2, 1, 1)
        assert tree.extent(2) == (8, 4, 4)

    def test_child_offsets_2d(self):
        tree = AMRTree(ndim=2)
        assert len(tree.child_offsets()) == 4

    def test_child_offsets_3d(self):
        tree = AMRTree(ndim=3)
        assert len(tree.child_offsets()) == 8

    def test_bbox(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2,
                       domain=((0.0, 2.0), (0.0, 2.0), (0.0, 1.0)))
        (x0, x1), (y0, y1), _ = tree.bbox(BlockId(0, 1, 0))
        assert (x0, x1) == (1.0, 2.0)
        assert (y0, y1) == (0.0, 1.0)
        (x0, x1), _, _ = tree.bbox(BlockId(1, 3, 0))
        assert (x0, x1) == (1.5, 2.0)

    def test_refine_splits(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=3)
        created = tree.refine(BlockId(0, 0, 0))
        assert len(created) == 4
        assert tree.n_leaves == 3 + 4
        assert not tree.is_leaf(BlockId(0, 0, 0))

    def test_refine_max_level(self):
        tree = AMRTree(ndim=2, max_level=0)
        with pytest.raises(MeshError):
            tree.refine(BlockId(0, 0, 0))

    def test_refine_non_leaf_rejected(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2)
        tree.refine(BlockId(0, 0, 0))
        with pytest.raises(MeshError):
            tree.split(BlockId(0, 0, 0))


class TestNeighbors:
    def test_same_level(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2)
        kind, nid = tree.face_neighbor(BlockId(0, 0, 0), 0, 1)
        assert kind == "leaf" and nid == BlockId(0, 1, 0)

    def test_boundary(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2)
        kind, nid = tree.face_neighbor(BlockId(0, 0, 0), 0, -1)
        assert kind == "boundary"

    def test_periodic_wrap(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2,
                       periodic=(True, False, False))
        kind, nid = tree.face_neighbor(BlockId(0, 0, 0), 0, -1)
        assert kind == "leaf" and nid == BlockId(0, 1, 0)

    def test_finer_neighbor(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1, max_level=2)
        tree.refine(BlockId(0, 1, 0))
        kind, kids = tree.face_neighbor(BlockId(0, 0, 0), 0, 1)
        assert kind == "finer"
        assert sorted(kids) == [BlockId(1, 2, 0), BlockId(1, 2, 1)]

    def test_coarser_neighbor(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1, max_level=2)
        tree.refine(BlockId(0, 1, 0))
        kind, nid = tree.face_neighbor(BlockId(1, 2, 0), 0, -1)
        assert kind == "coarser" and nid == BlockId(0, 0, 0)

    def test_finer_neighbor_3d(self):
        tree = AMRTree(ndim=3, nblockx=2, nblocky=1, nblockz=1, max_level=2)
        tree.refine(BlockId(0, 1, 0, 0))
        kind, kids = tree.face_neighbor(BlockId(0, 0, 0, 0), 0, 1)
        assert kind == "finer"
        assert len(kids) == 4  # the four children touching the face


class TestBalance:
    def test_refine_cascades_for_balance(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1, max_level=3)
        tree.refine(BlockId(0, 1, 0))
        # refining a level-1 child adjacent to the level-0 block must
        # force the level-0 block to refine first
        tree.refine(BlockId(1, 2, 0))
        tree.check_balance()
        assert not tree.is_leaf(BlockId(0, 0, 0))

    def test_derefine_rules(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1, max_level=3)
        tree.refine(BlockId(0, 1, 0))
        assert tree.can_derefine(BlockId(0, 1, 0))
        tree.refine(BlockId(1, 2, 0))
        # children of (0,1,0) are no longer all leaves
        assert not tree.can_derefine(BlockId(0, 1, 0))

    def test_derefine_blocked_by_fine_neighbor(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1, max_level=3)
        tree.refine(BlockId(0, 0, 0))
        tree.refine(BlockId(0, 1, 0))
        tree.refine(BlockId(1, 2, 0))  # level-2 leaves next to (0,1,0)'s kids
        tree.check_balance()
        assert not tree.can_derefine(BlockId(0, 0, 0))

    def test_derefine_restores(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=1)
        tree.refine(BlockId(0, 0, 0))
        removed = tree.derefine(BlockId(0, 0, 0))
        assert len(removed) == 4
        assert tree.n_leaves == 2

    def test_balance_invariant_random_refines(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=4)
        import random

        rng = random.Random(42)
        for _ in range(25):
            leaves = [b for b in tree.leaves() if b.level < tree.max_level]
            if not leaves:
                break
            tree.refine(rng.choice(leaves))
            tree.check_balance()


class TestMorton:
    def test_leaves_sorted_deterministically(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=3)
        tree.refine(BlockId(0, 1, 1))
        a = tree.leaves()
        b = tree.leaves()
        assert a == b

    def test_morton_locality(self):
        """Children of one parent are contiguous on the curve."""
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=3)
        tree.refine(BlockId(0, 0, 0))
        leaves = tree.leaves()
        idx = [leaves.index(BlockId(1, dx, dy)) for dx in (0, 1) for dy in (0, 1)]
        assert max(idx) - min(idx) == 3

    @given(ix=st.integers(0, 31), iy=st.integers(0, 31), lvl=st.integers(0, 4))
    def test_morton_key_injective_per_level(self, ix, iy, lvl):
        k1 = morton_key(BlockId(lvl, ix, iy), 5)
        k2 = morton_key(BlockId(lvl, ix + 1, iy), 5)
        assert k1 != k2
