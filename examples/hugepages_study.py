#!/usr/bin/env python
"""The paper's huge-page investigation, end to end, on the simulated node.

Replays section III/IV: configure a "modified" Ookami node (hugeadm,
sysfs THP toggles), run the static/dynamic toy programs, try every
mechanism on FLASH under GNU/Cray, build with the Fujitsu compiler, and
watch /proc/meminfo throughout — then explain the mystery the model
resolves.

The closing section is a worked fast-vs-scalar example: a small Sod
workload is recorded once and its memory behaviour replayed through
``PerformancePipeline`` under both engines (``engine="fast"`` — the
default vectorized batch kernels — and ``engine="scalar"``, the
per-access reference), demonstrating the bit-identical-counters
contract and the fast path's wall-clock advantage on real traces (see
docs/performance_model.md and docs/benchmarking.md).

Run:  python examples/hugepages_study.py
"""

import time

from repro.driver.simulation import Simulation
from repro.experiments.testprograms import (
    hugepage_usage_matrix,
    render_outcomes,
    static_vs_dynamic,
)
from repro.kernel.meminfo import render_meminfo
from repro.kernel.params import ookami_config
from repro.kernel.tools import Hugeadm
from repro.kernel.vmm import Kernel
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.perfmodel.pipeline import PerformancePipeline
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.toolchain.compiler import FUJITSU
from repro.util import MiB


def main() -> None:
    print("=== node setup (the two modified Ookami nodes, section III) ===")
    kernel = Kernel(ookami_config(modified_node=True))
    adm = Hugeadm(kernel)
    adm.pool_pages_min(128)  # hugeadm --pool-pages-min 2M:128
    adm.thp_always()  # echo always > .../transparent_hugepage/enabled
    print(f"THP sysfs: {kernel.read_sysfs_thp_enabled()}")
    print("\n/proc/meminfo after setup:")
    print(render_meminfo(kernel))

    print("\n=== the toy test programs (section IV) ===")
    print(render_outcomes(static_vs_dynamic("gnu") + static_vs_dynamic("cray"),
                          "static vs dynamic allocation"))

    print("\n=== the FLASH x mechanism matrix (sections III-IV) ===")
    print(render_outcomes(hugepage_usage_matrix(), "usage matrix"))

    print("\n=== meminfo during a Fujitsu-compiled FLASH run ===")
    kernel = Kernel(ookami_config())
    proc = FUJITSU.compile("flash4").launch(kernel)
    proc.allocate(96 * MiB, "unk")
    proc.first_touch("unk")
    print(render_meminfo(kernel))

    print("""
=== why the 'mystery' happens (the model's explanation) ===
On Ookami's CentOS 8 aarch64 kernel the translation granule is 64 KiB,
which makes the transparent-huge-page granule 512 MiB (PMD level) and the
hugetlbfs sizes 2 MiB / 512 MiB — exactly the boot parameters in the
paper.  Consequences, all visible above:
 * FLASH's ~100 MB arrays can never contain a whole aligned 512 MiB
   extent, so the THP fault path never fires for them under GNU or Cray
   (and the site-standard THP mode is madvise anyway);
 * the 2 GiB toy array does contain such extents -> dynamic allocation
   huge-pages; the static variant lives in the file-backed data segment,
   which THP never maps;
 * libhugetlbfs' LD_PRELOAD hooks only the morecore/sbrk heap path, but
   glibc serves big ALLOCATEs with plain mmap -> 'all to no avail';
   hugectl --shm only affects SysV shared memory FLASH doesn't use;
 * the Fujitsu runtime's XOS_MMM_L library intercepts the mmap path
   itself and backs it with 2 MiB hugetlbfs pages (surplus pool pages its
   installer enables on every node) -> FLASH huge-pages 'naturally', and
   -Knolargepage removes the library.
""")

    print("=== worked example: the two replay engines agree exactly ===")
    tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    sim = Simulation(grid, HydroUnit(eos, cfl=0.5), nrefs=0)
    log = WorkLog.attach(sim, helmholtz_eos=False)
    sim.evolve(nend=4)  # record once...

    reports, walls = {}, {}
    for engine in ("fast", "scalar"):  # ...replay under both engines
        t0 = time.perf_counter()
        reports[engine] = PerformancePipeline(
            log, FUJITSU, replication=8, engine=engine).run()
        walls[engine] = time.perf_counter() - t0
    totals = {k: r.as_counterbank().totals for k, r in reports.items()}
    assert totals["fast"] == totals["scalar"]
    dtlb = sum(t.tlb.l1_misses for t in reports["fast"].units.values())
    print(f"counter totals bit-identical across engines "
          f"({dtlb:.0f} L1 DTLB misses each); replay wall: "
          f"scalar {walls['scalar']:.2f}s, fast {walls['fast']:.2f}s "
          f"({walls['scalar'] / walls['fast']:.1f}x)")


if __name__ == "__main__":
    main()
