#!/usr/bin/env python
"""The paper's huge-page investigation, end to end, on the simulated node.

Replays section III/IV: configure a "modified" Ookami node (hugeadm,
sysfs THP toggles), run the static/dynamic toy programs, try every
mechanism on FLASH under GNU/Cray, build with the Fujitsu compiler, and
watch /proc/meminfo throughout — then explain the mystery the model
resolves.

Run:  python examples/hugepages_study.py
"""

from repro.experiments.testprograms import (
    hugepage_usage_matrix,
    render_outcomes,
    static_vs_dynamic,
)
from repro.kernel.meminfo import render_meminfo
from repro.kernel.params import ookami_config
from repro.kernel.tools import Hugeadm
from repro.kernel.vmm import Kernel
from repro.toolchain.compiler import FUJITSU
from repro.util import MiB


def main() -> None:
    print("=== node setup (the two modified Ookami nodes, section III) ===")
    kernel = Kernel(ookami_config(modified_node=True))
    adm = Hugeadm(kernel)
    adm.pool_pages_min(128)  # hugeadm --pool-pages-min 2M:128
    adm.thp_always()  # echo always > .../transparent_hugepage/enabled
    print(f"THP sysfs: {kernel.read_sysfs_thp_enabled()}")
    print("\n/proc/meminfo after setup:")
    print(render_meminfo(kernel))

    print("\n=== the toy test programs (section IV) ===")
    print(render_outcomes(static_vs_dynamic("gnu") + static_vs_dynamic("cray"),
                          "static vs dynamic allocation"))

    print("\n=== the FLASH x mechanism matrix (sections III-IV) ===")
    print(render_outcomes(hugepage_usage_matrix(), "usage matrix"))

    print("\n=== meminfo during a Fujitsu-compiled FLASH run ===")
    kernel = Kernel(ookami_config())
    proc = FUJITSU.compile("flash4").launch(kernel)
    proc.allocate(96 * MiB, "unk")
    proc.first_touch("unk")
    print(render_meminfo(kernel))

    print("""
=== why the 'mystery' happens (the model's explanation) ===
On Ookami's CentOS 8 aarch64 kernel the translation granule is 64 KiB,
which makes the transparent-huge-page granule 512 MiB (PMD level) and the
hugetlbfs sizes 2 MiB / 512 MiB — exactly the boot parameters in the
paper.  Consequences, all visible above:
 * FLASH's ~100 MB arrays can never contain a whole aligned 512 MiB
   extent, so the THP fault path never fires for them under GNU or Cray
   (and the site-standard THP mode is madvise anyway);
 * the 2 GiB toy array does contain such extents -> dynamic allocation
   huge-pages; the static variant lives in the file-backed data segment,
   which THP never maps;
 * libhugetlbfs' LD_PRELOAD hooks only the morecore/sbrk heap path, but
   glibc serves big ALLOCATEs with plain mmap -> 'all to no avail';
   hugectl --shm only affects SysV shared memory FLASH doesn't use;
 * the Fujitsu runtime's XOS_MMM_L library intercepts the mmap path
   itself and backs it with 2 MiB hugetlbfs pages (surplus pool pages its
   installer enables on every node) -> FLASH huge-pages 'naturally', and
   -Knolargepage removes the library.
""")


if __name__ == "__main__":
    main()
