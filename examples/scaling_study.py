#!/usr/bin/env python
"""The porting study's scaling narrative (section II / ref [33]).

FLASH "ran right out of the box ... and scaled reasonably well with no
tuning": distribute the Morton-ordered blocks of a supernova mesh across
simulated MPI ranks and chart the predicted strong-scaling curve with the
Ookami InfiniBand cost model.

Run:  python examples/scaling_study.py
"""

from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.mpisim.comm import CommCostModel, DomainDecomposition, scaling_model


def main() -> None:
    # a uniform 16x16 block mesh stands in for the supernova's leaf set
    tree = AMRTree(ndim=2, nblockx=16, nblocky=16, max_level=0,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4, maxblocks=512)
    grid = Grid(tree, spec)
    print(f"mesh: {grid.tree.n_leaves} blocks of 16x16 zones")

    # per-block per-step cost from the calibrated model: ~6000 cycles/zone
    seconds_per_block_step = 256 * 6000 / 1.8e9
    bytes_per_face = 4 * 16 * 12 * 8  # nguard x zones x nvar x 8B

    ranks = [1, 2, 4, 8, 16, 32, 48]
    times = scaling_model(grid, ranks,
                          seconds_per_block_step=seconds_per_block_step,
                          bytes_per_face=bytes_per_face, steps=100)

    print(f"\n{'ranks':>6}{'time (s)':>12}{'speedup':>10}{'efficiency':>12}"
          f"{'imbalance':>11}")
    t1 = times[1]
    for p in ranks:
        dd = DomainDecomposition.split(grid, p)
        speedup = t1 / times[p]
        print(f"{p:>6}{times[p]:>12.3f}{speedup:>10.2f}"
              f"{speedup / p:>11.1%}{dd.load_imbalance():>11.2f}")

    cost = CommCostModel()
    print(f"\ninterconnect model: latency {cost.latency_s * 1e6:.1f} us, "
          f"bandwidth {cost.bandwidth_Bps / 1e9:.1f} GB/s (HDR100)")
    print("the curve flattens as halo surface/volume grows — 'scaled "
          "reasonably well with no tuning'")


if __name__ == "__main__":
    main()
