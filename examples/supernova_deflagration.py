#!/usr/bin/env python
"""The paper's science problem: a Type Iax supernova deflagration.

Builds a hydrostatic hybrid C/O/Ne white dwarf with the Helmholtz-type
degenerate EOS, ignites an off-centre match-head, and evolves the pure
deflagration with hydro + ADR model flame + monopole gravity — the
workload behind the paper's "EOS" test.  Writes a checkpoint at the end.

Run:  python examples/supernova_deflagration.py [steps]
"""

import sys

import numpy as np

from repro.driver.io import write_checkpoint
from repro.driver.simulation import Simulation
from repro.setups.supernova import supernova_setup
from repro.util.constants import M_SUN


def main(steps: int = 15) -> None:
    print("constructing the hybrid CONe white dwarf (Helmholtz EOS) ...")
    prob = supernova_setup(nblock=3, nxb=16, max_level=2, maxblocks=512)
    model = prob.model
    print(f"  progenitor: M = {model.total_mass / M_SUN:.3f} Msun, "
          f"R = {model.surface_radius / 1e5:.0f} km, "
          f"rho_c = {model.dens[0]:.2e} g/cc")
    print(f"  mesh: {prob.grid.tree.n_leaves} leaf blocks "
          f"({prob.grid.tree.n_leaves * prob.grid.spec.zones_per_block()} zones)")

    sim = Simulation(prob.grid, prob.hydro, prob.flame, prob.gravity,
                     nrefs=4, refine_var="dens", refine_cutoff=0.75,
                     derefine_cutoff=0.05)

    e0 = prob.grid.total("eint")
    burned0 = prob.grid.total("fl01")
    print(f"\nevolving the deflagration for {steps} steps ...")
    for _ in range(steps):
        info = sim.step()
        if info.n % 5 == 0 or info.n == 1:
            t_max = max(float(prob.grid.interior(b, "temp").max())
                        for b in prob.grid.leaf_blocks())
            print(f"  step {info.n:3d}  t = {info.t:.4e} s  "
                  f"dt = {info.dt:.2e}  blocks = {info.n_blocks}  "
                  f"T_max = {t_max:.2e} K")

    e1 = prob.grid.total("eint")
    burned1 = prob.grid.total("fl01")
    print(f"\n  internal-energy change: {e1 - e0:+.3e} erg (2-d slice; "
          "includes the star's initial hydrostatic relaxation)")
    print(f"  burned mass (rho-weighted fl01): {burned0:.3e} -> {burned1:.3e}")
    print("  (a real deflagration needs ~1 s of star time; at "
          f"dt ~ {sim.history[-1].dt:.1e} s the front crosses a zone every "
          "~500 steps — the paper's 50-step runs probe performance, not "
          "burning progress)")

    path = write_checkpoint(prob.grid, "supernova_chk.npz",
                            time=sim.t, n_step=sim.n_step)
    print(f"  checkpoint written: {path}")
    print("\nFLASH-style timers:")
    print(sim.timers.summary())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15)
