#!/usr/bin/env python
"""Explore the A64FX DTLB with the exact TLB simulator.

Sweeps working-set size and page size through the two-level DTLB model
and prints the miss-rate landscape — the mechanism behind Tables I/II in
miniature: the 16-entry L1 is tiny, the 1024-entry L2 is big, and page
size moves working sets across both capacities.

The sweep also doubles as a worked fast-vs-scalar example: every trace
is replayed both by the per-access ``TLBSimulator`` (the scalar oracle)
and by the batch steady-state kernel ``run_steady_segments`` (the fast
engine's TLB core; see docs/performance_model.md), asserting identical
miss counts and reporting both wall clocks at the end.  Instructive
read-off: on *these* adversarial uniform-random gathers the oracle is
competitive — the batch kernels earn their several-fold pipeline
speedup (``python -m repro.bench``) on the structured traces FLASH
actually produces, where their guaranteed-hit prefilters dispose of
most accesses wholesale.

Run:  python examples/tlb_explorer.py
"""

import time

import numpy as np

from repro.hw.a64fx import A64FX
from repro.hw.tlb import TLBSimulator, run_steady_segments
from repro.hw.trace import PageTrace
from repro.util import KiB, MiB


def random_gather_trace(working_set: int, page_size: int, n: int = 60_000,
                        seed: int = 0) -> PageTrace:
    """n random accesses over a working set (the EOS-table pattern)."""
    rng = np.random.default_rng(seed)
    n_pages = max(working_set // page_size, 1)
    pages = (rng.integers(0, n_pages, size=n) * page_size).astype(np.int64)
    return PageTrace.from_accesses(pages, np.full(n, page_size, np.int64))


def streaming_trace(working_set: int, page_size: int,
                    passes: int = 4) -> PageTrace:
    """Sequential sweeps over a working set (the hydro pattern)."""
    n_pages = max(working_set // page_size, 1)
    pages = (np.tile(np.arange(n_pages), passes) * page_size).astype(np.int64)
    return PageTrace.from_accesses(pages,
                                   np.full(pages.size, page_size, np.int64))


def main() -> None:
    print(f"A64FX DTLB: L1 {A64FX.tlb.l1.entries} entries (full assoc), "
          f"L2 {A64FX.tlb.l2.entries} entries ({A64FX.tlb.l2.assoc}-way)\n")

    page_sizes = [(64 * KiB, "64K base"), (2 * MiB, "2M huge"),
                  (512 * MiB, "512M THP")]
    working_sets = [1 * MiB, 8 * MiB, 30 * MiB, 128 * MiB, 1024 * MiB]

    traces, scalar_stats = [], []
    t0 = time.perf_counter()
    for pattern_name, maker in (("random gathers (EOS-like)", random_gather_trace),
                                ("streaming sweeps (hydro-like)", streaming_trace)):
        print(f"--- {pattern_name} ---")
        header = f"{'working set':>14}" + "".join(
            f"{label:>16}" for _, label in page_sizes)
        print(header + "   (L1 miss rate)")
        for ws in working_sets:
            row = f"{ws // MiB:>11} MiB"
            for psize, _ in page_sizes:
                trace = maker(ws, psize)
                sim = TLBSimulator(A64FX.tlb)  # scalar oracle
                sim.run(trace)  # warm pass
                stats = sim.run(trace)  # measured pass
                traces.append(trace)
                scalar_stats.append(stats)
                row += f"{stats.l1_miss_rate:>15.1%} "
            print(row)
        print()
    t_scalar = time.perf_counter() - t0

    # the fast engine replays the whole landscape in ONE batch call
    # (streams = independent TLBs), the way the pipeline uses it
    t0 = time.perf_counter()
    fast_stats = run_steady_segments(A64FX.tlb, traces,
                                     streams=list(range(len(traces))))
    t_fast = time.perf_counter() - t0
    assert all((f.l1_misses, f.l2_misses) == (s.l1_misses, s.l2_misses)
               for f, s in zip(fast_stats, scalar_stats))
    print(f"(all {len(traces)} cells cross-checked: one batch "
          f"run_steady_segments call == scalar oracle; scalar "
          f"{t_scalar:.2f}s, batch {t_fast:.2f}s — random gathers are "
          f"the batch kernels' worst case; run `python -m repro.bench` "
          f"for their speedup on real FLASH traces)\n")

    print("Read-off: the 30 MiB Helmholtz table misses on nearly every")
    print("random gather with 64K pages but fits the TLB with 2M pages —")
    print("the paper's 21x EOS DTLB reduction.  Streaming misses only on")
    print("page transitions, so huge pages buy hydro far less — the 3x.")


if __name__ == "__main__":
    main()
