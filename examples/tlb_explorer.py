#!/usr/bin/env python
"""Explore the A64FX DTLB with the exact TLB simulator.

Sweeps working-set size and page size through the two-level DTLB model
and prints the miss-rate landscape — the mechanism behind Tables I/II in
miniature: the 16-entry L1 is tiny, the 1024-entry L2 is big, and page
size moves working sets across both capacities.

Run:  python examples/tlb_explorer.py
"""

import numpy as np

from repro.hw.a64fx import A64FX
from repro.hw.tlb import TLBSimulator
from repro.hw.trace import PageTrace
from repro.util import KiB, MiB


def random_gather_trace(working_set: int, page_size: int, n: int = 60_000,
                        seed: int = 0) -> PageTrace:
    """n random accesses over a working set (the EOS-table pattern)."""
    rng = np.random.default_rng(seed)
    n_pages = max(working_set // page_size, 1)
    pages = (rng.integers(0, n_pages, size=n) * page_size).astype(np.int64)
    return PageTrace.from_accesses(pages, np.full(n, page_size, np.int64))


def streaming_trace(working_set: int, page_size: int,
                    passes: int = 4) -> PageTrace:
    """Sequential sweeps over a working set (the hydro pattern)."""
    n_pages = max(working_set // page_size, 1)
    pages = (np.tile(np.arange(n_pages), passes) * page_size).astype(np.int64)
    return PageTrace.from_accesses(pages,
                                   np.full(pages.size, page_size, np.int64))


def main() -> None:
    print(f"A64FX DTLB: L1 {A64FX.tlb.l1.entries} entries (full assoc), "
          f"L2 {A64FX.tlb.l2.entries} entries ({A64FX.tlb.l2.assoc}-way)\n")

    page_sizes = [(64 * KiB, "64K base"), (2 * MiB, "2M huge"),
                  (512 * MiB, "512M THP")]
    working_sets = [1 * MiB, 8 * MiB, 30 * MiB, 128 * MiB, 1024 * MiB]

    for pattern_name, maker in (("random gathers (EOS-like)", random_gather_trace),
                                ("streaming sweeps (hydro-like)", streaming_trace)):
        print(f"--- {pattern_name} ---")
        header = f"{'working set':>14}" + "".join(
            f"{label:>16}" for _, label in page_sizes)
        print(header + "   (L1 miss rate)")
        for ws in working_sets:
            row = f"{ws // MiB:>11} MiB"
            for psize, _ in page_sizes:
                trace = maker(ws, psize)
                sim = TLBSimulator(A64FX.tlb)
                sim.run(trace)  # warm
                stats = sim.run(trace)
                row += f"{stats.l1_miss_rate:>15.1%} "
            print(row)
        print()

    print("Read-off: the 30 MiB Helmholtz table misses on nearly every")
    print("random gather with 64K pages but fits the TLB with 2M pages —")
    print("the paper's 21x EOS DTLB reduction.  Streaming misses only on")
    print("page transitions, so huge pages buy hydro far less — the 3x.")


if __name__ == "__main__":
    main()
