#!/usr/bin/env python
"""Quickstart: a 2-d Sedov blast on the AMR mesh, verified against the
exact self-similar solution.

This touches the library's core loop in ~40 lines: build a mesh, set up a
problem, evolve with the hydro unit under AMR, and compare to analytics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_pass
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import SedovSolution, sedov_setup


def main() -> None:
    # a [0,1]^2 domain tiled by 2x2 base blocks of 16x16 zones, refinable twice
    tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=3,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4, maxblocks=512)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)

    # deposit E=1 at the centre of a cold rho=1 medium, refining the spot
    for _ in range(3):
        sedov_setup(grid, eos, energy=1.0, rho0=1.0, center=(0.5, 0.5, 0.0))
        refine_pass(grid, "pres", refine_cutoff=0.6, derefine_cutoff=0.1)
    sedov_setup(grid, eos, energy=1.0, rho0=1.0, center=(0.5, 0.5, 0.0))

    sim = Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=2,
                     refine_var="pres", refine_cutoff=0.6,
                     derefine_cutoff=0.15, dtinit=1e-5)
    print("evolving the blast to t = 0.05 ...")
    sim.evolve(tmax=0.05, nend=1000)
    print(f"  {sim.n_step} steps, {grid.tree.n_leaves} leaf blocks")
    print(f"  mass conservation: {grid.total('dens', weight=None):.12f} (exact: 1)")

    # where is the shock? (radius of the density peak)
    from repro.analysis import peak_location

    best_r, best_d = peak_location(grid, "dens", center=(0.5, 0.5, 0.0))

    exact = SedovSolution(gamma=1.4, j=2, energy=1.0, rho0=1.0)
    r_exact = float(exact.shock_radius(sim.t))
    print(f"  shock radius: measured {best_r:.4f}, exact {r_exact:.4f} "
          f"({100 * abs(best_r / r_exact - 1):.1f}% off)")
    print(f"  peak compression: {best_d:.2f} "
          f"(strong-shock limit {exact.shock_compression():.1f})")
    print("\nFLASH-style timer summary:")
    print(sim.timers.summary())


if __name__ == "__main__":
    main()
