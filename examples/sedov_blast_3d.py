#!/usr/bin/env python
"""The paper's "3-d Hydro" test: a 3-d Sedov explosion with AMR,
verified against the exact Sedov-Taylor solution.

Run:  python examples/sedov_blast_3d.py [steps]
"""

import sys

import numpy as np

from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_pass
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import SedovSolution, sedov_setup


def main(steps: int = 12) -> None:
    tree = AMRTree(ndim=3, nblockx=2, nblocky=2, nblockz=2, max_level=2,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=3, nxb=16, nyb=16, nzb=16, nguard=4, maxblocks=512)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    print("setting up the 3-d Sedov problem ...")
    sedov_setup(grid, eos, center=(0.5, 0.5, 0.5))
    for _ in range(2):
        refine_pass(grid, "pres", refine_cutoff=0.6, derefine_cutoff=0.1)
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.5))
    zones = grid.tree.n_leaves * spec.zones_per_block()
    print(f"  {grid.tree.n_leaves} leaf blocks, {zones} zones")

    sim = Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=4,
                     refine_var="pres", refine_cutoff=0.6,
                     derefine_cutoff=0.15, dtinit=1e-5)
    print(f"evolving {steps} steps ...")
    for _ in range(steps):
        info = sim.step()
        print(f"  step {info.n:3d}  t = {info.t:.4e}  dt = {info.dt:.2e}  "
              f"blocks = {info.n_blocks}")

    exact = SedovSolution(gamma=1.4, j=3, energy=1.0, rho0=1.0)
    print(f"\n  exact solution: alpha = {exact.alpha:.4f} "
          f"(literature: 0.851), xi0 = {exact.xi0:.4f}")
    r_shock = float(exact.shock_radius(sim.t))
    print(f"  exact shock radius at t = {sim.t:.3e}: {r_shock:.4f}")
    print(f"  mass conservation: {grid.total('dens', weight=None):.12f}")

    # measured shock position: radius of the density peak
    from repro.analysis import peak_location, radial_profile

    r_peak, d_peak = peak_location(grid, "dens", center=(0.5, 0.5, 0.5))
    print(f"  measured density-peak radius: {r_peak:.4f} "
          f"(compression {d_peak:.2f}, strong-shock limit 6)")

    dx_finest = 1.0 / (2 * 16 * 2**2)
    if r_shock < 6 * dx_finest:
        print("  (early-time transient: the blast is still inside the "
              "deposit region; run more steps, e.g. 40, for a developed "
              "self-similar profile)")
    else:
        print("\n  radial density profile vs exact:")
        print(f"  {'r/R_shock':>10}{'<rho> measured':>16}{'rho exact':>12}")
        r_bins, d_bins = radial_profile(grid, "dens",
                                        center=(0.5, 0.5, 0.5),
                                        n_bins=48, r_max=1.3 * r_shock)
        for frac in (0.3, 0.6, 0.8, 0.95, 1.2):
            i = int(np.argmin(np.abs(r_bins - frac * r_shock)))
            if not np.isfinite(d_bins[i]):
                continue
            d_exact, _, _ = exact.profile(np.array([frac * r_shock]), sim.t)
            print(f"  {frac:>10.2f}{d_bins[i]:>16.3f}{d_exact[0]:>12.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
